//! The typed message/RPC layer between the retrieval engine and the DHT.
//!
//! The paper states every scalability result in *transmitted messages and
//! postings* (Section 4). This module makes those messages first-class: the
//! engine no longer calls storage functions directly — it constructs
//! [`Request`] values and hands them to a [`NetworkBackend`], which decides
//! what "the network" is. Two backends ship:
//!
//! * [`InProc`] — dispatches straight into the lock-striped [`Dht`], with
//!   metering identical to a direct call (the zero-cost default; golden
//!   reports, traffic counters and top-k score bits are bit-identical to
//!   the pre-RPC engine at any thread count);
//! * [`SimNet`] — the same storage dispatch plus a deterministic seeded
//!   network model: per-link FIFO transmission queues inside each request,
//!   per-hop propagation delay, seeded jitter, a drop/retransmission model,
//!   and a virtual clock — producing per-kind latency histograms and
//!   hop-weighted traffic in [`TrafficSnapshot`].
//!
//! ## Message taxonomy ↔ the paper's cost categories
//!
//! Each [`Request`] variant maps onto one [`MsgKind`] cost category of the
//! paper's evaluation:
//!
//! | request variant          | [`MsgKind`]                | paper cost category |
//! |--------------------------|----------------------------|---------------------|
//! | [`Request::InsertBatch`] | [`MsgKind::IndexInsert`]   | indexing cost: peers push locally computed key postings to the hosting peers (Figure 4); one metered message per key, batched per bulk-synchronous round |
//! | [`Request::Notify`]      | [`MsgKind::IndexNotify`]   | "key became globally non-discriminative" notifications that trigger key expansion (Section 3.1) |
//! | [`Request::LookupMany`]  | [`MsgKind::QueryLookup`] / [`MsgKind::QueryResponse`] | retrieval cost: one lookup request per key travels to the responsible peer, the stored block travels back (Figure 6) |
//! | [`Request::Migrate`]     | [`MsgKind::Maintenance`]   | overlay maintenance: the index fraction handed to a joining peer (excluded from the paper's posting counts, reported separately) |
//! | [`Request::Leave`]       | [`MsgKind::Maintenance`]   | overlay maintenance, mirror of `Migrate`: a gracefully departing peer hands its held copies to the re-derived replica sets before it goes |
//! | [`Request::Fail`]        | —                          | a crash sends no messages; the destroyed copies surface as a [`LossStats`] damage report, and the degraded entries as later `Repair` traffic |
//! | [`Request::Repair`]      | [`MsgKind::Repair`]        | replica repair: surviving replicas re-materialize the copies lost to crashes — structural-replication upkeep, counted in its own category so availability studies can separate it from join handovers |
//! | [`Request::Rebalance`]   | [`MsgKind::HotReplicate`]  | popularity-driven replication: the maintenance pass that materializes extra replicas of *hot* keys (and demotes cooled ones) — read-scaling upkeep, counted separately from crash repair |
//! | [`Request::Restart`]     | —                          | a restarting peer replays its own segment log — host-local disk I/O, never a network message; only the *gap* a restart leaves (lost hot-tier copies, corrupt tails) becomes later `Repair` traffic |
//!
//! ## Who knows what
//!
//! The RPC layer is generic over a [`StoreService`]: the *hosting peer's*
//! application logic (how an insert merges into a stored entry, how a
//! lookup reads one, how large each payload is). `hdk-core` implements it
//! for its `KeyEntry`; this crate stays ignorant of keys, postings and
//! ranking. Backends own the [`Dht`] and expose it via
//! [`NetworkBackend::dht`] for *host-local* work — end-of-round sweeps,
//! storage accounting, `peek` — which is free at the hosting peer and
//! therefore never a message.

use crate::dht::{
    stripe_of, Dht, GossipOutcome, HotStats, LossStats, MigrationStats, RepairStats,
    LOOKUP_REQUEST_BYTES,
};
use crate::gossip::GossipProbe;
use crate::id::{hash_u64s, splitmix64, KeyHash, PeerId};
use crate::overlay::Overlay;
use crate::replica::Delivery;
use crate::store::{RecoveryStats, Store};
use crate::transport::{MsgKind, TrafficSnapshot};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One index → peer notification inside a [`Request::Notify`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// The notified (contributing) peer.
    pub to: PeerId,
    /// Postings carried (notifications carry keys, so usually 0).
    pub postings: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

/// Per-item [`Delivery`] legs of an insert round, aligned with its
/// batches: `deliveries[batch][item]` lists the item's metered copies
/// (primary first, then forwarded replicas).
type InsertDeliveries = Vec<Vec<Vec<Delivery>>>;

/// One resolved lookup level: per key in input order, the response
/// payload with its `(postings, bytes)` volume, plus the [`Delivery`]
/// records the timing pass consumes.
type ResolvedLookups<L> = (Vec<(Option<L>, u64, u64)>, Vec<Delivery>);

/// A message body plus the DHT position it routes to.
#[derive(Debug, Clone)]
pub struct Addressed<T> {
    /// Where the message routes: the responsible peer is
    /// `overlay.responsible(route)`.
    pub route: KeyHash,
    /// The typed payload the hosting peer's [`StoreService`] consumes.
    pub body: T,
}

/// The hosting peer's application logic: how typed message payloads apply
/// to the values stored in the [`Dht`].
///
/// Implemented once by the engine crate (for its key-entry type); every
/// backend reuses the same implementation, which is what makes the two
/// backends produce identical storage state and traffic *counts* by
/// construction.
pub trait StoreService: Send + Sync {
    /// Value stored in the DHT per key (`'static`: values are owned data,
    /// storable behind a `dyn` storage backend).
    type Value: Send + Sync + 'static;
    /// Payload of one key's insert inside an [`Request::InsertBatch`].
    type Insert: Send + Sync;
    /// Payload of one key's lookup inside a [`Request::LookupMany`].
    type LookupKey: Send + Sync;
    /// Payload of one key's lookup response.
    type Lookup: Send;

    /// Wire volume of one insert payload: `(postings, bytes)` — what the
    /// meter records for its [`MsgKind::IndexInsert`] message.
    fn insert_volume(&self, insert: &Self::Insert) -> (u64, u64);

    /// A fresh stored value for a key seen for the first time.
    fn fresh(&self, insert: &Self::Insert) -> Self::Value;

    /// Merges one insert payload from peer `from` into the stored value.
    /// The returned flag travels back in the insert acknowledgement (in
    /// `hdk-core`: "this key is already non-discriminative").
    fn merge(&self, from: PeerId, insert: &Self::Insert, value: &mut Self::Value) -> bool;

    /// Builds one lookup response: `(payload, postings, bytes)`, the
    /// latter two metered as the [`MsgKind::QueryResponse`] volume
    /// (a miss still answers — typically with a small "not found").
    fn read(
        &self,
        key: &Self::LookupKey,
        value: Option<&Self::Value>,
    ) -> (Option<Self::Lookup>, u64, u64);

    /// `(postings, bytes)` a stored value contributes when its key
    /// migrates to a joining peer ([`MsgKind::Maintenance`] volume).
    fn migrate_volume(&self, value: &Self::Value) -> (u64, u64);
}

/// A typed request from the engine to the network, generic over the
/// [`StoreService`] payload types (`I = Insert`, `Q = LookupKey`).
#[derive(Debug, Clone)]
pub enum Request<I, Q> {
    /// One bulk-synchronous round of per-peer insert batches — the paper's
    /// indexing phase, where every peer pushes its locally computed key
    /// postings to the hosting peers. Batches must arrive in ascending
    /// [`PeerId`] order with each batch in canonical key order; backends
    /// apply each DHT stripe's inserts in exactly that order, so the
    /// stored state (including contributor order) is deterministic at any
    /// thread count. Each item is metered as its own
    /// [`MsgKind::IndexInsert`] message.
    InsertBatch {
        /// `(inserting peer, its batch)` pairs, ascending by peer.
        batches: Vec<(PeerId, Vec<Addressed<I>>)>,
    },
    /// One round's index → peer notifications ([`MsgKind::IndexNotify`]):
    /// each note tells a contributing peer that one of its keys became
    /// globally non-discriminative. Batched per sweep like the other
    /// message sets — each note is metered as its own message, and the
    /// simulated backend queues same-recipient notes FIFO. Notes must
    /// arrive in canonical (peer, key) order so the timing model is
    /// deterministic.
    Notify {
        /// The round's notifications, in canonical order.
        notes: Vec<Notification>,
    },
    /// One query-plan level's key lookups from one querying peer. Each key
    /// is metered as a [`MsgKind::QueryLookup`] request plus a
    /// [`MsgKind::QueryResponse`] carrying the stored block back.
    LookupMany {
        /// The querying peer (responses are attributed to it).
        from: PeerId,
        /// Deterministic identity of the query this level belongs to (a
        /// query hash, a stream position — any pure message attribute).
        /// At `R > 1` the serving replica of each probe is picked by
        /// `hash(query_id, key)` over the key's live holders, spreading
        /// read load across the replica set.
        query_id: u64,
        /// The level's candidate keys, in canonical plan order.
        keys: Vec<Addressed<Q>>,
    },
    /// A peer joins the overlay and the index fraction it becomes
    /// responsible for is handed over ([`MsgKind::Maintenance`]). A
    /// control-plane message: it mutates the overlay, so it dispatches
    /// through [`NetworkBackend::migrate`] / [`NetworkBackend::migrate_many`]
    /// (exclusive access), not [`NetworkBackend::call`].
    Migrate {
        /// The joining peer.
        peer: PeerId,
    },
    /// A wave of peers departs gracefully: each hands the copies it holds
    /// to the re-derived replica sets ([`MsgKind::Maintenance`], one
    /// aggregate message per leaver — the mirror of [`Request::Migrate`]),
    /// then disappears from the replica walks. Control-plane: mutates the
    /// membership view, dispatched through [`NetworkBackend::leave`].
    Leave {
        /// The departing peers.
        peers: Vec<PeerId>,
    },
    /// A wave of peers crashes: their copies are destroyed, nothing is
    /// handed over and **no messages are sent** — the damage surfaces as
    /// a [`LossStats`] report and as degraded replica sets for the next
    /// [`Request::Repair`]. Control-plane: dispatched through
    /// [`NetworkBackend::fail`].
    Fail {
        /// The crashed peers.
        peers: Vec<PeerId>,
    },
    /// The background repair sweep: surviving replicas re-materialize the
    /// copies the re-derived replica sets are missing, one
    /// [`MsgKind::Repair`] message per copied entry. Data-plane (`&self`):
    /// it changes no overlay or membership state, only holder sets.
    Repair,
    /// The popularity-maintenance sweep: keys whose lookup hit counters
    /// crossed the configured threshold gain extra replicas along the
    /// successor walk (one [`MsgKind::HotReplicate`] message per copy),
    /// cooled keys are demoted back to the structural set (local, free).
    /// Data-plane like [`Request::Repair`]: only holder sets change.
    Rebalance,
    /// A wave of peers restarts in place: each loses its hot (in-memory)
    /// tier and replays its own on-disk segment log, recovering every
    /// copy whose sealed frame survives checksum verification. Replay is
    /// **host-local disk I/O** — no network messages are sent and nothing
    /// is metered; the copies the log could not restore surface as a
    /// [`RecoveryStats`] report and as later [`Request::Repair`] traffic.
    /// Control-plane: it rewrites the stores' holder sets, dispatched
    /// through [`NetworkBackend::restart`].
    Restart {
        /// The restarting peers (must currently be live).
        peers: Vec<PeerId>,
    },
}

impl<I, Q> Request<I, Q> {
    /// The paper's cost category this request is metered under (lookups
    /// are metered under [`MsgKind::QueryLookup`] on the way out and
    /// [`MsgKind::QueryResponse`] on the way back).
    pub fn kind(&self) -> MsgKind {
        match self {
            Request::InsertBatch { .. } => MsgKind::IndexInsert,
            Request::Notify { .. } => MsgKind::IndexNotify,
            Request::LookupMany { .. } => MsgKind::QueryLookup,
            // A crash itself sends nothing, and a restart's log replay is
            // host-local; the category covers the churn taxonomy
            // (graceful handovers are maintenance).
            Request::Migrate { .. }
            | Request::Leave { .. }
            | Request::Fail { .. }
            | Request::Restart { .. } => MsgKind::Maintenance,
            Request::Repair => MsgKind::Repair,
            Request::Rebalance => MsgKind::HotReplicate,
        }
    }
}

/// The typed response to a [`Request`] (`L = StoreService::Lookup`).
#[derive(Debug, Clone)]
pub enum Response<L> {
    /// Acknowledges an [`Request::InsertBatch`]: one flag per inserted
    /// key, aligned with the request's batches, carrying whatever
    /// [`StoreService::merge`] returned (the ack piggybacks on the insert
    /// round-trip, so it costs no extra message).
    Inserted {
        /// `(inserting peer, per-key flags)` aligned with the request.
        acks: Vec<(PeerId, Vec<bool>)>,
    },
    /// Acknowledges a [`Request::Notify`].
    Notified,
    /// Answers a [`Request::LookupMany`], in request key order.
    Found {
        /// One response per requested key (`None` = not indexed).
        results: Vec<Option<L>>,
    },
    /// Answers a [`Request::Migrate`] with the handover volume.
    Migrated(MigrationStats),
    /// Answers a [`Request::Leave`] with one handover volume per leaver.
    Left(Vec<MigrationStats>),
    /// Answers a [`Request::Fail`] with the damage report.
    Lost(LossStats),
    /// Answers a [`Request::Repair`] with the re-materialized volume.
    Repaired(RepairStats),
    /// Answers a [`Request::Rebalance`] with the promotion/demotion report.
    Rebalanced(HotStats),
    /// Answers a [`Request::Restart`] with the log-replay report.
    Recovered(RecoveryStats),
}

/// A pluggable network between the engine and the DHT.
///
/// The required methods are the four message kinds; the provided
/// [`NetworkBackend::call`] dispatches the data-plane [`Request`] enum onto
/// them, so the engine can speak pure messages. `Migrate` is the one
/// control-plane message: it mutates the overlay and therefore requires
/// `&mut self` ([`NetworkBackend::migrate`]).
pub trait NetworkBackend<S: StoreService>: Send + Sync {
    /// Applies one bulk-synchronous round of insert batches; returns the
    /// per-key acknowledgement flags, aligned with the input.
    fn insert_batch(
        &self,
        batches: Vec<(PeerId, Vec<Addressed<S::Insert>>)>,
    ) -> Vec<(PeerId, Vec<bool>)>;

    /// Delivers one round's index → peer notifications (canonical order).
    fn notify(&self, notes: &[Notification]);

    /// Resolves one level of key lookups; results in input order.
    /// `query_id` spreads each probe's serving replica over the key's
    /// live holders (see [`Request::LookupMany`]).
    fn lookup_many(
        &self,
        from: PeerId,
        query_id: u64,
        keys: &[Addressed<S::LookupKey>],
    ) -> Vec<Option<S::Lookup>>;

    /// The control-plane [`Request::Migrate`] wave: admits `peers` to the
    /// overlay back to back, then migrates the index fractions they take
    /// over in **one shared stripe scan** ([`Dht::add_peers`]).
    fn migrate_many(&mut self, peers: Vec<PeerId>) -> Vec<MigrationStats>;

    /// Single-peer [`NetworkBackend::migrate_many`].
    fn migrate(&mut self, peer: PeerId) -> MigrationStats {
        self.migrate_many(vec![peer])
            .pop()
            .expect("one join, one migration")
    }

    /// The control-plane [`Request::Leave`] wave: graceful departures
    /// with a metered handover of every held copy ([`Dht::leave_peers`]).
    fn leave(&mut self, peers: &[PeerId]) -> Vec<MigrationStats>;

    /// The control-plane [`Request::Fail`] wave: crashes destroy copies,
    /// send nothing, and return the damage report ([`Dht::fail_peers`]).
    fn fail(&mut self, peers: &[PeerId]) -> LossStats;

    /// The [`Request::Repair`] sweep: re-materializes the copies the
    /// re-derived replica sets are missing ([`Dht::repair_sweep`]). The
    /// peer-liveness view itself is read through
    /// [`Dht::membership`](crate::dht::Dht::membership) on
    /// [`NetworkBackend::dht`].
    fn repair(&self) -> RepairStats;

    /// The [`Request::Rebalance`] sweep: materializes extra replicas for
    /// keys whose popularity crossed the configured threshold and demotes
    /// cooled ones ([`Dht::rebalance_hot`]). A no-op unless popularity-
    /// driven replication was enabled via
    /// [`Dht::set_hot_config`](crate::dht::Dht::set_hot_config) on
    /// [`NetworkBackend::dht_mut`].
    fn rebalance(&self) -> HotStats;

    /// The control-plane [`Request::Restart`] wave: each restarting peer
    /// loses its hot tier and replays its own segment log
    /// ([`Dht::restart_peers`]) — host-local disk I/O, so nothing is
    /// metered and no simulated network time passes beyond the replay
    /// serialization itself. Run a [`NetworkBackend::repair`] sweep
    /// afterwards to close any recovery gap.
    fn restart(&mut self, peers: &[PeerId]) -> RecoveryStats;

    /// Advances the gossip membership substrate by one round
    /// ([`Dht::gossip_round`]): the deterministic probe schedule runs,
    /// probes are metered (and, on a time-modeling backend, timed), and
    /// a death confirmed in every live view this round triggers the
    /// repair sweep — detection, not an oracle call.
    ///
    /// # Panics
    /// Panics unless gossip was enabled
    /// ([`Dht::enable_gossip`](crate::dht::Dht::enable_gossip) on
    /// [`NetworkBackend::dht_mut`]).
    fn gossip_round(&mut self) -> GossipOutcome;

    /// Host-local storage access: end-of-round sweeps, `peek`, storage
    /// accounting. Local work at the hosting peer is free (the paper's
    /// sweeps run "locally at each hosting peer"), so none of it is
    /// metered or delayed.
    fn dht(&self) -> &Dht<S::Value>;

    /// Exclusive storage access, for configuration that must happen
    /// before traffic flows (e.g.
    /// [`Dht::set_hot_config`](crate::dht::Dht::set_hot_config)).
    fn dht_mut(&mut self) -> &mut Dht<S::Value>;

    /// All traffic this backend has carried (counts for every backend;
    /// latency histograms only when the backend simulates time).
    fn snapshot(&self) -> TrafficSnapshot {
        self.dht().snapshot()
    }

    /// Virtual nanoseconds of simulated network time consumed so far
    /// (0 for backends that do not model time).
    fn virtual_time_ns(&self) -> u64 {
        0
    }

    /// Downcast hook for backends that extend the trait surface (the
    /// serving tier's remote backend routes entry sweeps over the wire
    /// instead of scanning the local stripes). `None` means "plain local
    /// backend" — callers must fall back to the generic path.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Dispatches a data-plane request.
    ///
    /// # Panics
    /// Panics on the control-plane variants — [`Request::Migrate`],
    /// [`Request::Leave`], [`Request::Fail`] and [`Request::Restart`]
    /// mutate the overlay, the membership view or the storage tiers and
    /// must go through [`NetworkBackend::migrate`] /
    /// [`NetworkBackend::leave`] / [`NetworkBackend::fail`] /
    /// [`NetworkBackend::restart`].
    fn call(&self, request: Request<S::Insert, S::LookupKey>) -> Response<S::Lookup> {
        match request {
            Request::InsertBatch { batches } => Response::Inserted {
                acks: self.insert_batch(batches),
            },
            Request::Notify { notes } => {
                self.notify(&notes);
                Response::Notified
            }
            Request::LookupMany {
                from,
                query_id,
                keys,
            } => Response::Found {
                results: self.lookup_many(from, query_id, &keys),
            },
            Request::Repair => Response::Repaired(self.repair()),
            Request::Rebalance => Response::Rebalanced(self.rebalance()),
            Request::Migrate { .. } => {
                panic!("Migrate mutates the overlay; dispatch it through NetworkBackend::migrate")
            }
            Request::Leave { .. } => {
                panic!("Leave mutates the membership; dispatch it through NetworkBackend::leave")
            }
            Request::Fail { .. } => {
                panic!("Fail mutates the membership; dispatch it through NetworkBackend::fail")
            }
            Request::Restart { .. } => {
                panic!("Restart replays local segment logs; dispatch it through NetworkBackend::restart")
            }
        }
    }
}

/// Shared storage dispatch for an insert round: bucket all batches by DHT
/// stripe (preserving the canonical `(peer, key)` request order within
/// each bucket), apply stripes rayon-parallel, and scatter the acks back
/// into request order. Both backends route through this, so their stored
/// state and traffic counts are identical by construction.
///
/// With `collect_deliveries` the per-item [`Delivery`] records (primary
/// copy first, then the forwarded replicas) come back aligned with the
/// batches — the simulated backend times its transmission pass from them
/// instead of re-running `overlay.route()` per message. The in-process
/// backend passes `false` and pays nothing.
fn dispatch_insert_batch<S: StoreService>(
    dht: &Dht<S::Value>,
    store: &S,
    batches: &[(PeerId, Vec<Addressed<S::Insert>>)],
    collect_deliveries: bool,
) -> (Vec<(PeerId, Vec<bool>)>, InsertDeliveries) {
    let mut buckets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); dht.num_stripes()];
    for (bi, (_, items)) in batches.iter().enumerate() {
        for (ii, item) in items.iter().enumerate() {
            buckets[stripe_of(item.route)].push((bi, ii));
        }
    }
    type StripeAcks = Vec<(usize, usize, bool, Vec<Delivery>)>;
    let acks: Vec<StripeAcks> = buckets
        .par_iter()
        .map(|bucket| {
            bucket
                .iter()
                .map(|&(bi, ii)| {
                    let (peer, items) = &batches[bi];
                    let item = &items[ii];
                    let (postings, bytes) = store.insert_volume(&item.body);
                    let mut legs = Vec::new();
                    let flag = dht.upsert_delivered(
                        *peer,
                        item.route,
                        postings,
                        bytes,
                        || store.fresh(&item.body),
                        |value| store.merge(*peer, &item.body, value),
                        |delivery| {
                            if collect_deliveries {
                                legs.push(delivery);
                            }
                        },
                    );
                    (bi, ii, flag, legs)
                })
                .collect()
        })
        .collect();
    let mut out: Vec<(PeerId, Vec<bool>)> = batches
        .iter()
        .map(|(peer, items)| (*peer, vec![false; items.len()]))
        .collect();
    let mut deliveries: InsertDeliveries = if collect_deliveries {
        batches
            .iter()
            .map(|(_, items)| vec![Vec::new(); items.len()])
            .collect()
    } else {
        Vec::new()
    };
    for (bi, ii, flag, legs) in acks.into_iter().flatten() {
        out[bi].1[ii] = flag;
        if collect_deliveries {
            deliveries[bi][ii] = legs;
        }
    }
    (out, deliveries)
}

/// Shared storage dispatch for one lookup level. Returns, per key in
/// input order, the response payload plus its `(postings, bytes)` volume,
/// and the resolved [`Delivery`] records — the simulated backend sizes
/// and times both transmission legs from them without re-running
/// `overlay.route()`.
fn dispatch_lookup_many<S: StoreService>(
    dht: &Dht<S::Value>,
    store: &S,
    from: PeerId,
    query_id: u64,
    keys: &[Addressed<S::LookupKey>],
) -> ResolvedLookups<S::Lookup> {
    let hashes: Vec<KeyHash> = keys.iter().map(|k| k.route).collect();
    dht.lookup_many_delivered(from, query_id, &hashes, |i, value| {
        let (result, postings, bytes) = store.read(&keys[i].body, value);
        ((result, postings, bytes), postings, bytes)
    })
}

/// The in-process backend: requests dispatch synchronously into the
/// lock-striped [`Dht`], with metering identical to a direct call. This is
/// the default backend and the performance baseline — `bench_rpc` checks
/// its dispatch overhead stays within noise of raw DHT calls.
pub struct InProc<S: StoreService> {
    dht: Dht<S::Value>,
    store: S,
}

impl<S: StoreService> InProc<S> {
    /// In-process network over `overlay`, with `store` as the hosting
    /// peers' application logic (unreplicated, `R = 1`).
    pub fn new(overlay: Box<dyn Overlay>, store: S) -> Self {
        Self::replicated(overlay, store, 1)
    }

    /// [`InProc::new`] with every key placed on `replication` live peers.
    pub fn replicated(overlay: Box<dyn Overlay>, store: S, replication: usize) -> Self {
        Self {
            dht: Dht::replicated(overlay, replication),
            store,
        }
    }

    /// [`InProc::replicated`] over a pluggable storage backend (e.g. a
    /// tiered [`crate::store::SegmentStore`] whose sealed segment logs
    /// make [`NetworkBackend::restart`] recover actual state).
    pub fn with_store(
        overlay: Box<dyn Overlay>,
        store: S,
        replication: usize,
        backend: Box<dyn Store<S::Value>>,
    ) -> Self {
        Self {
            dht: Dht::with_store(overlay, replication, backend),
            store,
        }
    }
}

impl<S: StoreService> NetworkBackend<S> for InProc<S> {
    fn insert_batch(
        &self,
        batches: Vec<(PeerId, Vec<Addressed<S::Insert>>)>,
    ) -> Vec<(PeerId, Vec<bool>)> {
        dispatch_insert_batch(&self.dht, &self.store, &batches, false).0
    }

    fn notify(&self, notes: &[Notification]) {
        for note in notes {
            self.dht.notify(note.to, note.postings, note.bytes);
        }
    }

    fn lookup_many(
        &self,
        from: PeerId,
        query_id: u64,
        keys: &[Addressed<S::LookupKey>],
    ) -> Vec<Option<S::Lookup>> {
        dispatch_lookup_many(&self.dht, &self.store, from, query_id, keys)
            .0
            .into_iter()
            .map(|(result, _, _)| result)
            .collect()
    }

    fn migrate_many(&mut self, peers: Vec<PeerId>) -> Vec<MigrationStats> {
        let store = &self.store;
        self.dht
            .add_peers(peers, |value| store.migrate_volume(value))
    }

    fn leave(&mut self, peers: &[PeerId]) -> Vec<MigrationStats> {
        let store = &self.store;
        self.dht
            .leave_peers(peers, |value| store.migrate_volume(value))
    }

    fn fail(&mut self, peers: &[PeerId]) -> LossStats {
        let store = &self.store;
        self.dht
            .fail_peers(peers, |value| store.migrate_volume(value))
    }

    fn repair(&self) -> RepairStats {
        let store = &self.store;
        self.dht
            .repair_sweep(|value| store.migrate_volume(value), |_, _, _| {})
    }

    fn rebalance(&self) -> HotStats {
        let store = &self.store;
        self.dht
            .rebalance_hot(|value| store.migrate_volume(value), |_, _, _| {})
    }

    fn restart(&mut self, peers: &[PeerId]) -> RecoveryStats {
        let store = &self.store;
        self.dht
            .restart_peers(peers, |value| store.migrate_volume(value))
    }

    fn gossip_round(&mut self) -> GossipOutcome {
        let store = &self.store;
        self.dht
            .gossip_round(|value| store.migrate_volume(value), |_| {}, |_, _, _| {})
    }

    fn dht(&self) -> &Dht<S::Value> {
        &self.dht
    }

    fn dht_mut(&mut self) -> &mut Dht<S::Value> {
        &mut self.dht
    }
}

impl<S: StoreService> std::fmt::Debug for InProc<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProc").field("dht", &self.dht).finish()
    }
}

/// Upper bound on modeled retransmissions per message: after this many
/// consecutive drops the delivery goes through anyway (a bounded-retry
/// transport), so latencies stay finite at any drop probability.
pub const MAX_RETRIES: u32 = 8;

/// Parameters of the simulated network.
///
/// Every random choice (jitter, drops) is a pure seeded function of the
/// message's observable attributes — kind, endpoints, route, size, hops
/// and position within its request — never of wall-clock time or
/// scheduling, so a scenario replays bit-identically at any
/// `RAYON_NUM_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimNetConfig {
    /// Seed for jitter and drop decisions.
    pub seed: u64,
    /// Propagation delay per overlay hop, nanoseconds.
    pub hop_ns: u64,
    /// Maximum per-message jitter, nanoseconds (uniform in `[0, jitter]`).
    pub jitter_ns: u64,
    /// Serialization (bandwidth) cost per payload byte, nanoseconds — the
    /// component that makes same-link messages queue behind each other.
    pub ns_per_byte: u64,
    /// Probability that one transmission attempt is dropped (each drop
    /// costs [`SimNetConfig::timeout_ns`] and a retransmission, bounded by
    /// [`MAX_RETRIES`]).
    pub drop_prob: f64,
    /// Retransmission timeout after a drop, nanoseconds.
    pub timeout_ns: u64,
}

impl Default for SimNetConfig {
    /// A WAN-flavored default: 0.4 ms per overlay hop, up to 0.15 ms
    /// jitter, ~1 Gbit/s links, no loss.
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            hop_ns: 400_000,
            jitter_ns: 150_000,
            ns_per_byte: 8,
            drop_prob: 0.0,
            timeout_ns: 25_000_000,
        }
    }
}

impl SimNetConfig {
    /// The degenerate all-zero network: every delivery is instantaneous
    /// and lossless. A `SimNet` configured with this must be
    /// observationally equal to [`InProc`] except that it still *records*
    /// its (zero) latency samples — the backend-equivalence configuration
    /// used by the property tests.
    pub fn zero() -> Self {
        Self {
            seed: 0,
            hop_ns: 0,
            jitter_ns: 0,
            ns_per_byte: 0,
            drop_prob: 0.0,
            timeout_ns: 0,
        }
    }
}

/// The simulated-network backend: storage dispatch identical to
/// [`InProc`] (same helpers, same meter), plus a deterministic timing
/// model per message:
///
/// * **per-link FIFO queues** — within one request, messages sharing a
///   link (an ordered `(sender, receiver)` peer pair) serialize: each
///   waits for the previous one's transmission
///   (`bytes × ns_per_byte`) to finish;
/// * **propagation** — `hops × hop_ns` along the overlay route;
/// * **jitter** — seeded-uniform in `[0, jitter_ns]`;
/// * **drops** — each attempt is dropped with `drop_prob`; a drop costs
///   `timeout_ns` and a retransmission (bounded by [`MAX_RETRIES`]),
///   surfacing as latency and in the histogram's `retries` counter, while
///   message *counts* keep counting logical messages — so counts stay
///   comparable with [`InProc`] at any loss rate.
///
/// Every delivery records into the per-kind [`crate::transport::LatencyHistogram`]s of
/// the shared meter, and the virtual clock advances by each request's
/// makespan (its slowest message chain), i.e. it accumulates the total
/// virtual network time of a back-to-back request schedule.
pub struct SimNet<S: StoreService> {
    dht: Dht<S::Value>,
    store: S,
    config: SimNetConfig,
    clock_ns: AtomicU64,
}

/// One message leg's observable attributes — everything the timing model
/// is allowed to depend on (never scheduling, never wall-clock).
struct Wire {
    kind: MsgKind,
    /// Ordered `(sender, receiver)` peer pair: the FIFO queue identity.
    link: (u64, u64),
    route: KeyHash,
    bytes: u64,
    hops: u32,
    /// Dead peers the failover walk skipped before this leg's target —
    /// each skipped candidate is a delivery attempt that timed out
    /// ("requests to dead peers cost a timeout, not a hang").
    dead_skips: u32,
    /// Canonical position within the request (jitter decorrelation).
    position: u64,
}

impl<S: StoreService> SimNet<S> {
    /// Simulated network over `overlay` with the given timing model
    /// (unreplicated, `R = 1`).
    pub fn new(overlay: Box<dyn Overlay>, store: S, config: SimNetConfig) -> Self {
        Self::replicated(overlay, store, config, 1)
    }

    /// [`SimNet::new`] with every key placed on `replication` live peers.
    pub fn replicated(
        overlay: Box<dyn Overlay>,
        store: S,
        config: SimNetConfig,
        replication: usize,
    ) -> Self {
        Self {
            dht: Dht::replicated(overlay, replication),
            store,
            config,
            clock_ns: AtomicU64::new(0),
        }
    }

    /// [`SimNet::replicated`] over a pluggable storage backend (e.g. a
    /// tiered [`crate::store::SegmentStore`] whose sealed segment logs
    /// make [`NetworkBackend::restart`] recover actual state).
    pub fn with_store(
        overlay: Box<dyn Overlay>,
        store: S,
        config: SimNetConfig,
        replication: usize,
        backend: Box<dyn Store<S::Value>>,
    ) -> Self {
        Self {
            dht: Dht::with_store(overlay, replication, backend),
            store,
            config,
            clock_ns: AtomicU64::new(0),
        }
    }

    /// The timing model in use.
    pub fn config(&self) -> &SimNetConfig {
        &self.config
    }

    /// Delivers one message leg, returning its total latency: queueing
    /// behind earlier same-link messages of this request, then
    /// serialization, propagation, jitter, drop/retransmission timeouts,
    /// and one timeout per dead peer the failover walk skipped (a dead
    /// candidate is a delivery attempt that times out — never a hang and
    /// never an extra counted message). Records the sample — including
    /// the retransmitted byte volume — into the meter's histogram.
    fn deliver(&self, wire: Wire, busy: &mut HashMap<(u64, u64), u64>) -> u64 {
        let Wire {
            kind,
            link,
            route,
            bytes,
            hops,
            dead_skips,
            position,
        } = wire;
        let c = &self.config;
        let transmit = bytes * c.ns_per_byte;
        let queue = busy.entry(link).or_insert(0);
        let wait = *queue;
        *queue += transmit;
        let h = hash_u64s(&[
            c.seed,
            kind.slot() as u64,
            link.0,
            link.1,
            route.0,
            bytes,
            position,
        ]);
        let jitter = if c.jitter_ns == 0 {
            0
        } else {
            splitmix64(h) % (c.jitter_ns + 1)
        };
        let mut retries = 0u32;
        let mut draw = h;
        while retries < MAX_RETRIES {
            draw = splitmix64(draw.wrapping_add(0x9e37));
            let frac = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if frac >= c.drop_prob {
                break;
            }
            retries += 1;
        }
        let resends = retries + dead_skips;
        let latency = wait
            + transmit
            + u64::from(hops) * c.hop_ns
            + jitter
            + u64::from(resends) * c.timeout_ns;
        self.dht
            .meter()
            .record_latency(kind, latency, resends, u64::from(resends) * bytes);
        latency
    }

    /// Advances the virtual clock by one request's makespan.
    fn advance(&self, makespan_ns: u64) {
        self.clock_ns.fetch_add(makespan_ns, Ordering::Relaxed);
    }
}

impl<S: StoreService> NetworkBackend<S> for SimNet<S> {
    fn insert_batch(
        &self,
        batches: Vec<(PeerId, Vec<Addressed<S::Insert>>)>,
    ) -> Vec<(PeerId, Vec<bool>)> {
        let (acks, deliveries) = dispatch_insert_batch(&self.dht, &self.store, &batches, true);
        // Timing pass, in canonical request order, over the Delivery
        // records the storage dispatch resolved — the trie walk is paid
        // once, not re-run per message. Every copy (primary + forwarded
        // replicas) is one timed message leg.
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        let mut position = 0u64;
        for ((_, items), item_legs) in batches.iter().zip(&deliveries) {
            for (item, legs) in items.iter().zip(item_legs) {
                let (_, bytes) = self.store.insert_volume(&item.body);
                for leg in legs {
                    let latency = self.deliver(
                        Wire {
                            kind: MsgKind::IndexInsert,
                            link: (leg.source.0, leg.target.0),
                            route: item.route,
                            bytes,
                            hops: leg.hops,
                            dead_skips: leg.dead_skips,
                            position,
                        },
                        &mut busy,
                    );
                    makespan = makespan.max(latency);
                    position += 1;
                }
            }
        }
        self.advance(makespan);
        acks
    }

    fn notify(&self, notes: &[Notification]) {
        for note in notes {
            self.dht.notify(note.to, note.postings, note.bytes);
        }
        // Timing pass over the batch: messages to the same contributor
        // share a link and queue FIFO; the position decorrelates the
        // jitter of otherwise-identical notes. The DHT charges
        // notifications one hop, and so does the timing model.
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        for (position, note) in notes.iter().enumerate() {
            let latency = self.deliver(
                Wire {
                    kind: MsgKind::IndexNotify,
                    link: (u64::MAX, note.to.0),
                    route: KeyHash(note.to.0),
                    bytes: note.bytes,
                    hops: 1,
                    dead_skips: 0,
                    position: position as u64,
                },
                &mut busy,
            );
            makespan = makespan.max(latency);
        }
        self.advance(makespan);
    }

    fn lookup_many(
        &self,
        from: PeerId,
        query_id: u64,
        keys: &[Addressed<S::LookupKey>],
    ) -> Vec<Option<S::Lookup>> {
        let (resolved, deliveries) =
            dispatch_lookup_many(&self.dht, &self.store, from, query_id, keys);
        // Timing pass over the Delivery records the metering path
        // resolved (serving replica, failover hops, dead skips) — counted
        // hops and simulated transmission times share one derivation, and
        // the trie is walked once per key, not twice. The request leg
        // queues on the forward link (and pays the dead-peer timeouts of
        // the failover walk), the response leg on the reverse link; a
        // key's exchange completes after both.
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        for (position, ((item, (_, _, resp_bytes)), leg)) in
            keys.iter().zip(&resolved).zip(&deliveries).enumerate()
        {
            let request = self.deliver(
                Wire {
                    kind: MsgKind::QueryLookup,
                    link: (leg.source.0, leg.target.0),
                    route: item.route,
                    bytes: LOOKUP_REQUEST_BYTES,
                    hops: leg.hops,
                    dead_skips: leg.dead_skips,
                    position: position as u64,
                },
                &mut busy,
            );
            let response = self.deliver(
                Wire {
                    kind: MsgKind::QueryResponse,
                    link: (leg.target.0, leg.source.0),
                    route: item.route,
                    bytes: *resp_bytes,
                    hops: leg.hops,
                    dead_skips: 0,
                    position: position as u64,
                },
                &mut busy,
            );
            makespan = makespan.max(request + response);
        }
        self.advance(makespan);
        resolved.into_iter().map(|(result, _, _)| result).collect()
    }

    fn migrate_many(&mut self, peers: Vec<PeerId>) -> Vec<MigrationStats> {
        let store = &self.store;
        let all_stats = self
            .dht
            .add_peers(peers.clone(), |value| store.migrate_volume(value));
        // One aggregate handover delivery per joiner, sharing the wave's
        // FIFO state (a single join times exactly as it always did).
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        for (position, (peer, stats)) in peers.iter().zip(&all_stats).enumerate() {
            let latency = self.deliver(
                Wire {
                    kind: MsgKind::Maintenance,
                    link: (u64::MAX, peer.0),
                    route: KeyHash(peer.0),
                    bytes: stats.bytes_moved,
                    hops: 1,
                    dead_skips: 0,
                    position: position as u64,
                },
                &mut busy,
            );
            makespan = makespan.max(latency);
        }
        self.advance(makespan);
        all_stats
    }

    fn leave(&mut self, peers: &[PeerId]) -> Vec<MigrationStats> {
        let store = &self.store;
        let all_stats = self
            .dht
            .leave_peers(peers, |value| store.migrate_volume(value));
        // The mirror of a join wave: one aggregate handover delivery per
        // leaver, pushed *out* of the departing peer.
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        for (position, (peer, stats)) in peers.iter().zip(&all_stats).enumerate() {
            let latency = self.deliver(
                Wire {
                    kind: MsgKind::Maintenance,
                    link: (peer.0, u64::MAX),
                    route: KeyHash(peer.0),
                    bytes: stats.bytes_moved,
                    hops: 1,
                    dead_skips: 0,
                    position: position as u64,
                },
                &mut busy,
            );
            makespan = makespan.max(latency);
        }
        self.advance(makespan);
        all_stats
    }

    fn fail(&mut self, peers: &[PeerId]) -> LossStats {
        // A crash sends nothing and takes no (virtual) time — its cost
        // shows up later, as failover timeouts and repair traffic.
        let store = &self.store;
        self.dht
            .fail_peers(peers, |value| store.migrate_volume(value))
    }

    fn repair(&self) -> RepairStats {
        let store = &self.store;
        let mut copies: Vec<(KeyHash, Delivery, u64)> = Vec::new();
        let stats = self.dht.repair_sweep(
            |value| store.migrate_volume(value),
            |key, delivery, bytes| copies.push((key, delivery, bytes)),
        );
        // Timing pass in the sweep's canonical (key, target) order: each
        // re-materialized copy is one Repair message from the surviving
        // source replica to the restored holder.
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        for (position, (key, leg, bytes)) in copies.into_iter().enumerate() {
            let latency = self.deliver(
                Wire {
                    kind: MsgKind::Repair,
                    link: (leg.source.0, leg.target.0),
                    route: key,
                    bytes,
                    hops: leg.hops,
                    dead_skips: leg.dead_skips,
                    position: position as u64,
                },
                &mut busy,
            );
            makespan = makespan.max(latency);
        }
        self.advance(makespan);
        stats
    }

    fn rebalance(&self) -> HotStats {
        let store = &self.store;
        let mut copies: Vec<(KeyHash, Delivery, u64)> = Vec::new();
        let stats = self.dht.rebalance_hot(
            |value| store.migrate_volume(value),
            |key, delivery, bytes| copies.push((key, delivery, bytes)),
        );
        // Timing pass in the sweep's canonical (key, target) order: each
        // materialized extra is one HotReplicate message from the picked
        // source holder to the new one — the same shape as a repair copy.
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        for (position, (key, leg, bytes)) in copies.into_iter().enumerate() {
            let latency = self.deliver(
                Wire {
                    kind: MsgKind::HotReplicate,
                    link: (leg.source.0, leg.target.0),
                    route: key,
                    bytes,
                    hops: leg.hops,
                    dead_skips: leg.dead_skips,
                    position: position as u64,
                },
                &mut busy,
            );
            makespan = makespan.max(latency);
        }
        self.advance(makespan);
        stats
    }

    fn restart(&mut self, peers: &[PeerId]) -> RecoveryStats {
        // Replay is host-local disk I/O: no messages, no latency samples
        // (like `fail`, nothing travels the network) — but reading the
        // log back is not free, so the virtual clock advances by the
        // replayed volume at link serialization speed, a disk-as-fast-
        // as-the-NIC stand-in until storage gets its own rate model.
        let store = &self.store;
        let stats = self
            .dht
            .restart_peers(peers, |value| store.migrate_volume(value));
        self.advance(stats.bytes_replayed * self.config.ns_per_byte);
        stats
    }

    fn gossip_round(&mut self) -> GossipOutcome {
        let store = &self.store;
        let mut probes: Vec<GossipProbe> = Vec::new();
        let mut copies: Vec<(KeyHash, Delivery, u64)> = Vec::new();
        let outcome = self.dht.gossip_round(
            |value| store.migrate_volume(value),
            |probe| probes.push(probe),
            |key, delivery, bytes| copies.push((key, delivery, bytes)),
        );
        // Timing pass in the round's canonical probe order: a delivered
        // exchange is a ping leg plus an ack leg back over the reverse
        // link (the exchange completes after both); a failed probe is one
        // leg that times out (`dead_skips = 1` — the delivery attempt to
        // a dead or unreachable peer, exactly like a failover skip). The
        // repair the round may have triggered rides the same wave.
        let peers: Vec<PeerId> = self.dht.overlay().peers().to_vec();
        let mut busy = HashMap::new();
        let mut makespan = 0u64;
        let mut position = 0u64;
        for p in &probes {
            let ping = self.deliver(
                Wire {
                    kind: MsgKind::Gossip,
                    link: (peers[p.from as usize].0, peers[p.to as usize].0),
                    route: KeyHash(p.position),
                    bytes: p.bytes,
                    hops: 1,
                    dead_skips: u32::from(!p.delivered),
                    position,
                },
                &mut busy,
            );
            position += 1;
            let exchange = if p.delivered {
                let ack = self.deliver(
                    Wire {
                        kind: MsgKind::Gossip,
                        link: (peers[p.to as usize].0, peers[p.from as usize].0),
                        route: KeyHash(p.position),
                        bytes: p.bytes,
                        hops: 1,
                        dead_skips: 0,
                        position,
                    },
                    &mut busy,
                );
                position += 1;
                ping + ack
            } else {
                ping
            };
            makespan = makespan.max(exchange);
        }
        for (key, leg, bytes) in copies {
            let latency = self.deliver(
                Wire {
                    kind: MsgKind::Repair,
                    link: (leg.source.0, leg.target.0),
                    route: key,
                    bytes,
                    hops: leg.hops,
                    dead_skips: leg.dead_skips,
                    position,
                },
                &mut busy,
            );
            position += 1;
            makespan = makespan.max(latency);
        }
        self.advance(makespan);
        outcome
    }

    fn dht(&self) -> &Dht<S::Value> {
        &self.dht
    }

    fn dht_mut(&mut self) -> &mut Dht<S::Value> {
        &mut self.dht
    }

    fn virtual_time_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Relaxed)
    }
}

impl<S: StoreService> std::fmt::Debug for SimNet<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("dht", &self.dht)
            .field("config", &self.config)
            .field("virtual_ns", &self.clock_ns.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::hash_u64s;
    use crate::pgrid::PGrid;

    /// A toy store: values are doc-id sets, inserts are `(route, docs)`
    /// payloads, lookups return the stored vector.
    struct SetStore;

    impl StoreService for SetStore {
        type Value = Vec<u32>;
        type Insert = Vec<u32>;
        type LookupKey = ();
        type Lookup = Vec<u32>;

        fn insert_volume(&self, insert: &Vec<u32>) -> (u64, u64) {
            (insert.len() as u64, 4 * insert.len() as u64)
        }

        fn fresh(&self, _insert: &Vec<u32>) -> Vec<u32> {
            Vec::new()
        }

        fn merge(&self, _from: PeerId, insert: &Vec<u32>, value: &mut Vec<u32>) -> bool {
            value.extend(insert);
            value.len() > 4
        }

        fn read(&self, _key: &(), value: Option<&Vec<u32>>) -> (Option<Vec<u32>>, u64, u64) {
            match value {
                Some(v) => (Some(v.clone()), v.len() as u64, 4 * v.len() as u64),
                None => (None, 0, 8),
            }
        }

        fn migrate_volume(&self, value: &Vec<u32>) -> (u64, u64) {
            (value.len() as u64, 4 * value.len() as u64)
        }
    }

    fn overlay(n: u64) -> Box<dyn Overlay> {
        Box::new(PGrid::new((0..n).map(PeerId).collect()))
    }

    fn addressed(word: u64, docs: &[u32]) -> Addressed<Vec<u32>> {
        Addressed {
            route: KeyHash(hash_u64s(&[word])),
            body: docs.to_vec(),
        }
    }

    fn round() -> Vec<(PeerId, Vec<Addressed<Vec<u32>>>)> {
        vec![
            (PeerId(0), vec![addressed(1, &[0, 1]), addressed(2, &[2])]),
            (
                PeerId(1),
                vec![addressed(1, &[5, 6, 7, 8]), addressed(3, &[9])],
            ),
            (PeerId(2), vec![addressed(2, &[4])]),
        ]
    }

    fn probes() -> Vec<Addressed<()>> {
        (1..=4u64)
            .map(|w| Addressed {
                route: KeyHash(hash_u64s(&[w])),
                body: (),
            })
            .collect()
    }

    #[test]
    fn inproc_matches_direct_dht_calls_bit_for_bit() {
        // The same scenario through the typed RPC layer and through raw
        // Dht calls must produce identical storage and traffic.
        let backend = InProc::new(overlay(8), SetStore);
        let acks = match backend.call(Request::InsertBatch { batches: round() }) {
            Response::Inserted { acks } => acks,
            other => panic!("wrong response: {other:?}"),
        };
        assert_eq!(acks[0], (PeerId(0), vec![false, false]));
        assert_eq!(acks[1].1, vec![true, false], "merge flag travels back");
        backend.notify(&[Notification {
            to: PeerId(0),
            postings: 0,
            bytes: 6,
        }]);
        let results = backend.lookup_many(PeerId(3), 0, &probes());

        let direct: Dht<Vec<u32>> = Dht::new(overlay(8));
        for (peer, items) in round() {
            for item in &items {
                let (postings, bytes) = SetStore.insert_volume(&item.body);
                direct.upsert(
                    peer,
                    item.route,
                    postings,
                    bytes,
                    Vec::new,
                    |v: &mut Vec<u32>| v.extend(&item.body),
                );
            }
        }
        direct.notify(PeerId(0), 0, 6);
        let hashes: Vec<KeyHash> = probes().iter().map(|p| p.route).collect();
        let expected = direct.lookup_many(PeerId(3), 0, &hashes, |_, v| match v {
            Some(v) => (Some(v.clone()), v.len() as u64, 4 * v.len() as u64),
            None => (None, 0, 8),
        });

        assert_eq!(results, expected);
        assert_eq!(backend.snapshot(), direct.snapshot(), "traffic diverged");
        assert_eq!(backend.virtual_time_ns(), 0, "in-proc models no time");
    }

    #[test]
    fn simnet_zero_config_equals_inproc_counts_and_results() {
        let mut inproc = InProc::new(overlay(8), SetStore);
        let mut sim = SimNet::new(overlay(8), SetStore, SimNetConfig::zero());
        let a = inproc.insert_batch(round());
        let b = sim.insert_batch(round());
        assert_eq!(a, b);
        assert_eq!(
            inproc.lookup_many(PeerId(5), 17, &probes()),
            sim.lookup_many(PeerId(5), 17, &probes())
        );
        assert_eq!(inproc.migrate(PeerId(100)), sim.migrate(PeerId(100)));
        let (sa, sb) = (inproc.snapshot(), sim.snapshot());
        assert!(sa.same_counts(&sb), "counts must match across backends");
        // The zero network is instantaneous but still records samples.
        assert_ne!(sa, sb, "SimNet records (zero) latency samples");
        let lookups = sb.latency(MsgKind::QueryLookup);
        assert_eq!(lookups.samples, sb.kind(MsgKind::QueryLookup).messages);
        assert_eq!(lookups.total_ns, 0);
        assert_eq!(sim.virtual_time_ns(), 0);
    }

    #[test]
    fn simnet_latencies_are_deterministic_and_structured() {
        let run = || {
            let sim = SimNet::new(
                overlay(8),
                SetStore,
                SimNetConfig {
                    seed: 42,
                    hop_ns: 100_000,
                    jitter_ns: 40_000,
                    ns_per_byte: 10,
                    drop_prob: 0.0,
                    timeout_ns: 0,
                },
            );
            sim.insert_batch(round());
            sim.lookup_many(PeerId(6), 0, &probes());
            (sim.snapshot(), sim.virtual_time_ns())
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2, "same seed, same histograms");
        assert_eq!(t1, t2);
        assert!(t1 > 0, "virtual clock must advance");
        let h = s1.latency(MsgKind::QueryResponse);
        assert_eq!(h.samples, s1.kind(MsgKind::QueryResponse).messages);
        assert!(h.total_ns > 0, "nonzero config must produce latency");
        assert_eq!(h.retries, 0);
        // A different seed shifts the jitter draw.
        let other = SimNet::new(
            overlay(8),
            SetStore,
            SimNetConfig {
                seed: 43,
                hop_ns: 100_000,
                jitter_ns: 40_000,
                ns_per_byte: 10,
                drop_prob: 0.0,
                timeout_ns: 0,
            },
        );
        other.insert_batch(round());
        other.lookup_many(PeerId(6), 0, &probes());
        assert_ne!(
            other.snapshot().latency(MsgKind::QueryResponse).total_ns,
            h.total_ns
        );
    }

    #[test]
    fn same_link_messages_queue_fifo() {
        // Two inserts of the same key come from the same peer, so they
        // share a link: the second must wait for the first's transmission.
        let sim = SimNet::new(
            overlay(2),
            SetStore,
            SimNetConfig {
                seed: 7,
                hop_ns: 0,
                jitter_ns: 0,
                ns_per_byte: 100,
                drop_prob: 0.0,
                timeout_ns: 0,
            },
        );
        let batch = vec![(
            PeerId(0),
            vec![addressed(9, &[1, 2, 3]), addressed(9, &[4, 5, 6])],
        )];
        sim.insert_batch(batch);
        let snap = sim.snapshot();
        let h = snap.latency(MsgKind::IndexInsert);
        assert_eq!(h.samples, 2);
        // transmit = 12 bytes * 100 ns; first waits 0, second waits 1200.
        assert_eq!(h.total_ns, 1200 + 2400);
        assert_eq!(h.max_ns, 2400);
    }

    #[test]
    fn same_recipient_notifications_queue_and_decorrelate() {
        // N notes to one peer share a link: they serialize FIFO and each
        // position draws its own jitter — no degenerate N-copies-of-one-
        // latency histogram.
        let sim = SimNet::new(
            overlay(4),
            SetStore,
            SimNetConfig {
                seed: 5,
                hop_ns: 0,
                jitter_ns: 10_000,
                ns_per_byte: 50,
                drop_prob: 0.0,
                timeout_ns: 0,
            },
        );
        let notes = vec![
            Notification {
                to: PeerId(1),
                postings: 0,
                bytes: 6,
            };
            4
        ];
        sim.notify(&notes);
        let snap = sim.snapshot();
        let h = snap.latency(MsgKind::IndexNotify);
        assert_eq!(h.samples, 4);
        assert_eq!(snap.kind(MsgKind::IndexNotify).messages, 4);
        // Queueing: the k-th note waits for k earlier transmissions of
        // 6 * 50 ns each, so total >= 300 * (0+1+2+3) + 4 transmissions.
        assert!(h.total_ns >= 300 * 6 + 4 * 300);
        // Decorrelation: positions draw different jitter, so the samples
        // cannot all land in one bucket at identical latency.
        assert!(h.max_ns > 300 * 3 + 300, "jitter must vary by position");
    }

    #[test]
    fn drops_cost_timeouts_not_messages() {
        let lossless = SimNet::new(overlay(4), SetStore, SimNetConfig::zero());
        let lossy = SimNet::new(
            overlay(4),
            SetStore,
            SimNetConfig {
                seed: 11,
                drop_prob: 1.0,
                timeout_ns: 1_000,
                ..SimNetConfig::zero()
            },
        );
        lossless.insert_batch(round());
        lossy.insert_batch(round());
        let (a, b) = (lossless.snapshot(), lossy.snapshot());
        assert!(
            a.same_counts(&b),
            "drops surface as latency, never as extra counted messages"
        );
        let h = b.latency(MsgKind::IndexInsert);
        assert_eq!(
            h.retries,
            u64::from(MAX_RETRIES) * h.samples,
            "certain loss hits the bounded-retry cap every time"
        );
        assert_eq!(h.total_ns, u64::from(MAX_RETRIES) * 1_000 * h.samples);
    }

    #[test]
    fn migrate_is_metered_and_timed() {
        let mut sim = SimNet::new(
            overlay(4),
            SetStore,
            SimNetConfig {
                seed: 3,
                hop_ns: 50_000,
                ..SimNetConfig::zero()
            },
        );
        sim.insert_batch(round());
        let before = sim.virtual_time_ns();
        let stats = sim.migrate(PeerId(77));
        let snap = sim.snapshot();
        assert_eq!(snap.kind(MsgKind::Maintenance).messages, 1);
        assert_eq!(
            snap.kind(MsgKind::Maintenance).postings,
            stats.postings_moved
        );
        assert_eq!(snap.latency(MsgKind::Maintenance).samples, 1);
        assert!(sim.virtual_time_ns() > before);
    }

    #[test]
    #[should_panic(expected = "NetworkBackend::migrate")]
    fn call_rejects_the_control_plane_variant() {
        let backend = InProc::new(overlay(2), SetStore);
        let _ = backend.call(Request::Migrate { peer: PeerId(9) });
    }

    #[test]
    fn request_kinds_map_to_the_paper_taxonomy() {
        let insert: Request<Vec<u32>, ()> = Request::InsertBatch { batches: vec![] };
        assert_eq!(insert.kind(), MsgKind::IndexInsert);
        let notify: Request<Vec<u32>, ()> = Request::Notify { notes: vec![] };
        assert_eq!(notify.kind(), MsgKind::IndexNotify);
        let lookup: Request<Vec<u32>, ()> = Request::LookupMany {
            from: PeerId(0),
            query_id: 0,
            keys: vec![],
        };
        assert_eq!(lookup.kind(), MsgKind::QueryLookup);
        let migrate: Request<Vec<u32>, ()> = Request::Migrate { peer: PeerId(1) };
        assert_eq!(migrate.kind(), MsgKind::Maintenance);
        let leave: Request<Vec<u32>, ()> = Request::Leave { peers: vec![] };
        assert_eq!(leave.kind(), MsgKind::Maintenance);
        let fail: Request<Vec<u32>, ()> = Request::Fail { peers: vec![] };
        assert_eq!(fail.kind(), MsgKind::Maintenance);
        let repair: Request<Vec<u32>, ()> = Request::Repair;
        assert_eq!(repair.kind(), MsgKind::Repair);
        let rebalance: Request<Vec<u32>, ()> = Request::Rebalance;
        assert_eq!(rebalance.kind(), MsgKind::HotReplicate);
        let restart: Request<Vec<u32>, ()> = Request::Restart { peers: vec![] };
        assert_eq!(restart.kind(), MsgKind::Maintenance);
    }

    #[test]
    #[should_panic(expected = "NetworkBackend::restart")]
    fn call_rejects_the_restart_variant() {
        let backend = InProc::new(overlay(2), SetStore);
        let _ = backend.call(Request::Restart {
            peers: vec![PeerId(0)],
        });
    }

    /// A `StoreCodec` for the toy `Vec<u32>` values, so the RPC tests can
    /// run over a tiered store.
    struct U32SetCodec;

    impl crate::store::StoreCodec<Vec<u32>> for U32SetCodec {
        fn encode(&self, value: &Vec<u32>, out: &mut Vec<u8>) {
            for v in value {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }

        fn decode(&self, bytes: &[u8]) -> Option<Vec<u32>> {
            if !bytes.len().is_multiple_of(4) {
                return None;
            }
            Some(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect(),
            )
        }

        fn weight(&self, value: &Vec<u32>) -> u64 {
            4 * value.len() as u64
        }
    }

    #[test]
    fn restart_over_segments_recovers_sealed_state_unmetered() {
        // Build over a tiered store with a zero hot budget (everything
        // seals to disk), restart a holder, and check the log replay
        // restored its copies without a single metered message.
        let seg = crate::store::SegmentStore::ephemeral(U32SetCodec, 0);
        let mut backend = InProc::with_store(overlay(8), SetStore, 2, Box::new(seg));
        backend.insert_batch(round());
        backend.dht().sync_storage();
        let before = backend.snapshot();
        let expected = backend.lookup_many(PeerId(3), 0, &probes());

        let stats = backend.restart(&[PeerId(0), PeerId(1)]);
        assert!(stats.frames_replayed > 0, "the logs were not empty");
        assert_eq!(stats.copies_lost, 0, "synced state recovers fully");
        assert_eq!(stats.frames_discarded, 0);

        let after = backend.snapshot();
        // Only the verification lookups above are new traffic.
        assert_eq!(
            after.kind(MsgKind::QueryLookup).messages,
            before.kind(MsgKind::QueryLookup).messages + probes().len() as u64,
        );
        assert_eq!(
            after.kind(MsgKind::Maintenance).messages,
            before.kind(MsgKind::Maintenance).messages,
            "log replay is host-local, never metered"
        );
        assert_eq!(backend.repair().copies, 0, "no gap to close");
        assert_eq!(backend.lookup_many(PeerId(3), 0, &probes()), expected);
    }

    #[test]
    fn rebalance_is_metered_and_timed_on_simnet() {
        let mut sim = SimNet::replicated(
            overlay(8),
            SetStore,
            SimNetConfig {
                seed: 9,
                hop_ns: 50_000,
                ..SimNetConfig::zero()
            },
            1,
        );
        sim.dht_mut().set_hot_config(crate::dht::HotConfig {
            threshold: 3,
            extra: 1,
        });
        sim.insert_batch(round());
        let hot = vec![Addressed {
            route: KeyHash(hash_u64s(&[1])),
            body: (),
        }];
        for qid in 0..4u64 {
            sim.lookup_many(PeerId(5), qid, &hot);
        }
        let before = sim.virtual_time_ns();
        let stats = sim.rebalance();
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.copies, 1);
        let snap = sim.snapshot();
        assert_eq!(snap.kind(MsgKind::HotReplicate).messages, 1);
        assert_eq!(snap.latency(MsgKind::HotReplicate).samples, 1);
        assert!(sim.virtual_time_ns() > before, "the copy took virtual time");
        // Cross-backend equality: the same program through InProc counts
        // the same traffic (no latency samples, same counts).
        let mut ip = InProc::new(overlay(8), SetStore);
        ip.dht_mut().set_hot_config(crate::dht::HotConfig {
            threshold: 3,
            extra: 1,
        });
        ip.insert_batch(round());
        for qid in 0..4u64 {
            ip.lookup_many(PeerId(5), qid, &hot);
        }
        assert_eq!(ip.rebalance(), stats);
        assert!(ip.snapshot().same_counts(&sim.snapshot()));
    }

    #[test]
    fn golden_simnet_spread_failover_scenario() {
        // Pinned end-to-end numbers for the spread path's dead-candidate
        // accounting: crash the owner at R=2, then look the key up through
        // the batched (spread) path. The surviving holder is the forced
        // pick, each skipped dead candidate costs one timeout, and the
        // numbers must match the single-key walk-order path exactly.
        let config = SimNetConfig {
            seed: 2026,
            hop_ns: 100_000,
            jitter_ns: 0,
            ns_per_byte: 0,
            drop_prob: 0.0,
            timeout_ns: 1_000_000,
        };
        let run = |batched: bool| {
            let mut sim = SimNet::replicated(overlay(4), SetStore, config, 2);
            sim.insert_batch(vec![(PeerId(0), vec![addressed(9, &[1, 2, 3])])]);
            let key = KeyHash(hash_u64s(&[9]));
            let owner = sim.dht().overlay().responsible(key);
            sim.fail(&[owner]);
            let probe = vec![Addressed {
                route: key,
                body: (),
            }];
            if batched {
                sim.lookup_many(PeerId(0), 1234, &probe);
            } else {
                // The walk-order reference: one key at a time.
                for p in &probe {
                    sim.lookup_many(PeerId(0), 1234, std::slice::from_ref(p));
                }
            }
            sim.snapshot()
        };
        let (spread, walk) = (run(true), run(false));
        assert_eq!(spread, walk, "spread accounting must match walk order");
        let h = spread.latency(MsgKind::QueryLookup);
        assert_eq!(h.samples, 1);
        // One dead owner skipped: request pays 1 timeout + (route+1) hops.
        assert_eq!(h.retries, 1, "the dead owner cost one timed-out attempt");
        assert_eq!(
            h.retransmission_bytes, LOOKUP_REQUEST_BYTES,
            "the skipped attempt resent the request payload"
        );
        assert!(
            h.max_ns >= 1_000_000 + 100_000,
            "timeout + at least one hop"
        );
        assert_eq!(
            spread.latency(MsgKind::QueryResponse).retries,
            0,
            "the response leg retraces a live path"
        );
    }
}
