//! Structured P2P substrate.
//!
//! The paper runs on "a structured P2P network" — concretely the P-Grid
//! layer (Section 5: "our prototype retrieval engine built on top of the
//! P-Grid P2P layer"). This crate simulates that substrate in-process with
//! *exact accounting of transmitted postings*, the unit in which the paper
//! states every scalability result ("we [...] merely analyze the number of
//! postings the network needs to absorb and transmit", Section 4).
//!
//! Two interchangeable overlays implement the [`Overlay`] trait:
//!
//! * [`pgrid::PGrid`] — a binary-trie overlay in the style of P-Grid
//!   (prefix-partitioned key space, prefix-correcting routing),
//! * [`ring::ChordRing`] — a consistent-hashing ring with finger tables,
//!
//! so experiments can show the HDK results are independent of the routing
//! substrate. The [`dht::Dht`] storage layer runs on either and meters all
//! traffic through [`transport::TrafficMeter`].
//!
//! The engine reaches the DHT through the typed message layer of [`rpc`]:
//! request/response enums for the paper's message taxonomy plus the
//! [`rpc::NetworkBackend`] trait with two implementations — [`rpc::InProc`]
//! (synchronous dispatch, the zero-cost default) and [`rpc::SimNet`] (a
//! deterministic seeded latency/jitter/drop model with per-kind latency
//! histograms and a virtual clock).
//!
//! Entry bytes live behind the pluggable [`store::Store`] trait: the
//! in-memory [`store::MemStore`] default, or the tiered
//! [`store::SegmentStore`] (hot budgeted tier + checksummed on-disk
//! segment logs) that makes peers restartable ([`dht::Dht::restart_peers`]).

pub mod dht;
pub mod gossip;
pub mod id;
pub mod overlay;
pub mod pgrid;
pub mod replica;
pub mod ring;
pub mod rpc;
pub mod store;
pub mod transport;
pub mod wire;

pub use dht::{
    stripe_of, Dht, GossipMetering, GossipOutcome, HotConfig, HotStats, LossStats, MigrationStats,
    RepairStats, LOOKUP_REQUEST_BYTES, NUM_STRIPES,
};
pub use gossip::{
    digest_bytes as gossip_digest_bytes, GossipConfig, GossipProbe, GossipRound, GossipState,
    Liveness, PeerView, ViewEntry,
};
pub use id::{hash_bytes, hash_u64s, KeyHash, PeerId};
pub use overlay::{Overlay, RouteResult};
pub use pgrid::PGrid;
pub use replica::{Delivery, Membership, MembershipEvent, PeerState};
pub use ring::ChordRing;
pub use rpc::{
    Addressed, InProc, NetworkBackend, Notification, Request, Response, SimNet, SimNetConfig,
    StoreService,
};
pub use store::{MemStore, RecoveryStats, SegmentStore, Slot, Store, StoreCodec, Tier};
pub use transport::{
    KindSnapshot, LatencyHistogram, MsgKind, TrafficMeter, TrafficSnapshot, LATENCY_BUCKETS,
    NUM_KINDS,
};
pub use wire::{
    put_bytes, put_u32, put_u64, put_u8, read_frame as read_wire_frame,
    write_frame as write_wire_frame, WireError, WireReader, WireResult, MAX_FRAME_BYTES,
    WIRE_HEADER_BYTES,
};
