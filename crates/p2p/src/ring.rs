//! Chord-style consistent-hashing ring with finger tables.
//!
//! The alternative routing substrate (the paper's related work, e.g.
//! ODISSEA \[17\] and the analyses in \[7, 20\], assume Chord-like DHTs). A key
//! is owned by its *successor*: the first peer whose ring position is `>=`
//! the key position, wrapping around. Routing greedily follows the closest
//! preceding finger, giving `O(log N)` hops.

use crate::id::{hash_u64s, KeyHash, PeerId};
use crate::overlay::{Overlay, RouteResult};

/// A static Chord ring over a fixed peer set.
#[derive(Debug)]
pub struct ChordRing {
    /// Peers in input order (stable external indexing).
    peers: Vec<PeerId>,
    /// `(ring position, index into peers)`, sorted by position.
    ring: Vec<(u64, usize)>,
    /// `fingers[i][k]` = ring-slot index of the peer owning position
    /// `pos_i + 2^k` (deduplicated).
    fingers: Vec<Vec<usize>>,
    /// Ring slot of each peer (inverse of `ring`'s second column) — makes
    /// the clockwise successor walk O(1) per step.
    slots: Vec<usize>,
}

impl ChordRing {
    /// Builds the ring. Ring positions are derived from peer ids by
    /// hashing, so positions are deterministic.
    ///
    /// # Panics
    /// Panics on an empty peer set or duplicate peers.
    pub fn new(peers: Vec<PeerId>) -> Self {
        assert!(!peers.is_empty(), "ring needs at least one peer");
        let (ring, fingers) = Self::build_tables(&peers);
        let slots = Self::invert(&ring);
        Self {
            peers,
            ring,
            fingers,
            slots,
        }
    }

    /// Peer-index → ring-slot inverse of the sorted ring.
    fn invert(ring: &[(u64, usize)]) -> Vec<usize> {
        let mut slots = vec![0usize; ring.len()];
        for (slot, &(_, idx)) in ring.iter().enumerate() {
            slots[idx] = slot;
        }
        slots
    }

    fn build_tables(peers: &[PeerId]) -> (Vec<(u64, usize)>, Vec<Vec<usize>>) {
        let mut ring: Vec<(u64, usize)> = peers
            .iter()
            .enumerate()
            .map(|(i, p)| (hash_u64s(&[p.0, 0xC0FFEE]), i))
            .collect();
        ring.sort_unstable();
        for w in ring.windows(2) {
            assert_ne!(w[0].0, w[1].0, "ring position collision");
        }
        let mut fingers = vec![Vec::new(); ring.len()];
        for (slot, &(pos, _)) in ring.iter().enumerate() {
            let mut table = Vec::with_capacity(64);
            for k in 0..64u32 {
                let target = pos.wrapping_add(1u64 << k);
                let succ = Self::successor_slot(&ring, target);
                if succ != slot && table.last() != Some(&succ) {
                    table.push(succ);
                }
            }
            table.dedup();
            fingers[slot] = table;
        }
        (ring, fingers)
    }

    /// Slot of the first ring entry with position `>= target` (wrapping).
    fn successor_slot(ring: &[(u64, usize)], target: u64) -> usize {
        let i = ring.partition_point(|&(pos, _)| pos < target);
        if i == ring.len() {
            0
        } else {
            i
        }
    }

    /// Clockwise distance from `a` to `b` on the ring.
    #[inline]
    fn dist(a: u64, b: u64) -> u64 {
        b.wrapping_sub(a)
    }

    fn slot_of_peer(&self, peer: PeerId) -> usize {
        let idx = self.peer_index(peer);
        self.ring
            .iter()
            .position(|&(_, i)| i == idx)
            .expect("peer is on the ring")
    }
}

impl Overlay for ChordRing {
    fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    fn peer_index(&self, peer: PeerId) -> usize {
        self.peers
            .iter()
            .position(|&p| p == peer)
            .expect("unknown peer")
    }

    fn responsible(&self, key: KeyHash) -> PeerId {
        let slot = Self::successor_slot(&self.ring, key.0);
        self.peers[self.ring[slot].1]
    }

    fn join(&mut self, peer: PeerId) {
        assert!(!self.peers.contains(&peer), "{peer} is already on the ring");
        self.peers.push(peer);
        // A join moves the new peer's arc from its successor; fingers are
        // rebuilt (the simulation equivalent of Chord's stabilization).
        let (ring, fingers) = Self::build_tables(&self.peers);
        self.slots = Self::invert(&ring);
        self.ring = ring;
        self.fingers = fingers;
    }

    fn successor_index(&self, peer_index: usize) -> usize {
        self.ring[(self.slots[peer_index] + 1) % self.ring.len()].1
    }

    fn route(&self, from: PeerId, key: KeyHash) -> RouteResult {
        let target_slot = Self::successor_slot(&self.ring, key.0);
        let mut cur = self.slot_of_peer(from);
        let mut hops = 0u32;
        while cur != target_slot {
            let cur_pos = self.ring[cur].0;
            let key_dist = Self::dist(cur_pos, key.0);
            // Closest preceding finger: the finger that gets furthest
            // towards the key without passing it.
            let mut next = None;
            let mut best = 0u64;
            for &f in &self.fingers[cur] {
                let d = Self::dist(cur_pos, self.ring[f].0);
                if d > 0 && d <= key_dist && d > best {
                    best = d;
                    next = Some(f);
                }
            }
            let next = next.unwrap_or_else(|| (cur + 1) % self.ring.len());
            debug_assert_ne!(next, cur, "routing made no progress");
            cur = next;
            hops += 1;
            // In a ring of n peers a correct greedy route never exceeds n.
            debug_assert!(hops as usize <= self.ring.len());
        }
        RouteResult {
            responsible: self.peers[self.ring[target_slot].1],
            hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::test_support::{check_balance, check_overlay_contract};

    fn peers(n: u64) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    #[test]
    fn contract_small_and_medium() {
        for n in [1, 2, 3, 8, 28, 64] {
            let ring = ChordRing::new(peers(n));
            check_overlay_contract(&ring);
        }
    }

    #[test]
    fn balanced_ownership() {
        let ring = ChordRing::new(peers(28));
        check_balance(&ring, 20_000, 3.0);
    }

    #[test]
    fn hops_logarithmic() {
        let ring = ChordRing::new(peers(128));
        let mut total_hops = 0u64;
        let mut routes = 0u64;
        for k in 0..2_000u64 {
            let key = KeyHash(hash_u64s(&[k, 7]));
            let from = PeerId(k % 128);
            total_hops += u64::from(ring.route(from, key).hops);
            routes += 1;
        }
        let avg = total_hops as f64 / routes as f64;
        // log2(128) = 7; greedy Chord averages ~log2(n)/2.
        assert!(avg <= 8.0, "average hops {avg}");
        assert!(avg >= 1.0, "suspiciously low average hops {avg}");
    }

    #[test]
    fn single_peer_owns_everything() {
        let ring = ChordRing::new(peers(1));
        for k in 0..50u64 {
            let key = KeyHash(hash_u64s(&[k]));
            assert_eq!(ring.responsible(key), PeerId(0));
            assert_eq!(ring.route(PeerId(0), key).hops, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_rejected() {
        let _ = ChordRing::new(vec![]);
    }
}
