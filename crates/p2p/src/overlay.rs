//! The overlay abstraction shared by both routing substrates.
//!
//! An overlay answers two questions: *which peer is responsible for a key*
//! (the DHT contract used by the global index, paper Section 3: "keys and
//! associated posting lists [...] are allocated to `P_i` by the Distributed
//! Hash Table built by the P2P network") and *how many hops does a message
//! take to get there* (routing cost, excluded from the paper's posting
//! counts but reported separately by our meters).

use crate::id::{KeyHash, PeerId};

/// Result of routing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteResult {
    /// The peer responsible for the key.
    pub responsible: PeerId,
    /// Overlay hops from the originator to the responsible peer.
    pub hops: u32,
}

/// A structured overlay over a fixed peer population.
pub trait Overlay: Send + Sync {
    /// All peers, in a stable order. The position of a peer in this slice is
    /// its *peer index*, used by storage and metering arrays.
    fn peers(&self) -> &[PeerId];

    /// Index of `peer` in [`Overlay::peers`].
    fn peer_index(&self, peer: PeerId) -> usize;

    /// The peer responsible for `key`.
    fn responsible(&self, key: KeyHash) -> PeerId;

    /// Routes from `from` to the peer responsible for `key`, counting hops.
    /// Implementations must agree with [`Overlay::responsible`].
    fn route(&self, from: PeerId, key: KeyHash) -> RouteResult;

    /// Admits a new peer. The peer is appended to [`Overlay::peers`] (so
    /// existing peer indices stay stable) and takes over part of the key
    /// space; [`crate::dht::Dht::add_peer`] migrates the affected keys.
    ///
    /// # Panics
    /// Panics if the peer is already a member.
    fn join(&mut self, peer: PeerId);

    /// Peer index of the peer owning the key-space region immediately
    /// *after* `peer_index`'s, wrapping around — the in-order successor of
    /// the binary trie, or the clockwise neighbor on the ring.
    ///
    /// Iterating `successor_index` from any start visits every peer
    /// exactly once per cycle; this is the deterministic walk replica
    /// placement is derived from (primary = responsible peer, replicas =
    /// the next peers along the walk — see `crate::replica`).
    fn successor_index(&self, peer_index: usize) -> usize;

    /// Number of peers.
    fn len(&self) -> usize {
        self.peers().len()
    }

    /// True for an empty overlay (never constructed in practice).
    fn is_empty(&self) -> bool {
        self.peers().is_empty()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::id::hash_u64s;

    /// Exercises the contract every overlay must satisfy.
    pub fn check_overlay_contract<O: Overlay>(overlay: &O) {
        let peers = overlay.peers();
        assert!(!peers.is_empty());
        // peer_index is the inverse of peers().
        for (i, &p) in peers.iter().enumerate() {
            assert_eq!(overlay.peer_index(p), i);
        }
        // Every key routes to its responsible peer from every origin, and
        // a peer reaches its own keys in zero hops.
        for k in 0..200u64 {
            let key = KeyHash(hash_u64s(&[k]));
            let owner = overlay.responsible(key);
            for &from in peers.iter().take(8) {
                let r = overlay.route(from, key);
                assert_eq!(r.responsible, owner, "route/responsible disagree");
                if from == owner {
                    assert_eq!(r.hops, 0, "self-route must be free");
                }
            }
        }
        // The successor walk is a single cycle covering every peer once.
        let mut cur = 0usize;
        let mut seen = vec![false; peers.len()];
        for _ in 0..peers.len() {
            assert!(!seen[cur], "successor walk revisited peer {cur} early");
            seen[cur] = true;
            cur = overlay.successor_index(cur);
        }
        assert_eq!(cur, 0, "successor walk must wrap to its start");
        assert!(seen.iter().all(|&s| s), "walk skipped a peer");
    }

    /// Checks that responsibility spreads over many peers (load balance).
    pub fn check_balance<O: Overlay>(overlay: &O, keys: u64, max_skew: f64) {
        let n = overlay.len();
        let mut counts = vec![0usize; n];
        for k in 0..keys {
            let key = KeyHash(hash_u64s(&[k, 0xdead]));
            counts[overlay.peer_index(overlay.responsible(key))] += 1;
        }
        let expected = keys as f64 / n as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max <= expected * max_skew,
            "max load {max} exceeds {max_skew}x the mean {expected}"
        );
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonempty, n, "some peers own no keys");
    }
}
