//! Deterministic SWIM-style gossip membership: per-peer liveness views.
//!
//! The [`crate::replica::Membership`] structure is *ground truth* — the
//! physical simulation substrate that decides whether a probe reaches its
//! target and whose transitions destroy copies. Until this module, it was
//! also an instantaneous oracle: every peer "saw" a death the moment it
//! happened. Real P2P networks have no such oracle; each peer maintains
//! its own **view** of who is alive, fed by background gossip, and the
//! gap between view and truth is what stale-view routing costs.
//!
//! The protocol is SWIM-shaped and fully deterministic:
//!
//! * Each peer `i` holds a [`PeerView`]: per observed peer, a
//!   [`Liveness`] (`Alive` / `Suspect` / `Dead`) plus an **incarnation
//!   number** for refutation.
//! * Every [`GossipState::run_round`], each ground-truth-live peer pings
//!   [`GossipConfig::fanout`] targets chosen by a seeded hash of
//!   `(seed, round, peer, slot)` — never by a shared RNG stream, so the
//!   schedule is a pure function of the round number and replays
//!   bit-identically at any thread count and on any backend.
//! * A delivered ping carries the sender's full view digest; the target
//!   merges it (higher incarnation wins; at equal incarnation
//!   `Dead > Suspect > Alive`), **refutes** any suspicion of itself by
//!   bumping its own incarnation, and answers with its own digest — so a
//!   false suspicion is first-class and heals network-wide within a
//!   round trip plus dissemination.
//! * A probe to a ground-truth-dead target (or one lost to the gossip
//!   channel's own seeded [`GossipConfig::loss_prob`]) times out and the
//!   sender marks the target `Suspect`. A suspicion that survives
//!   [`GossipConfig::suspicion_rounds`] rounds without refutation is
//!   confirmed `Dead` in that observer's view.
//! * Fanout slots never target view-confirmed-dead peers, so each round
//!   a peer whose view holds any confirmed death sends one extra
//!   **resurrection probe** into that dead set (memberlist's "gossip to
//!   the dead"). Against a truly dead peer it just times out; against a
//!   falsely-confirmed live peer it lets the victim refute on the spot —
//!   without it, two groups that each confirmed the other dead would
//!   partition the belief graph forever.
//!
//! Confirmed deaths are what the rest of the stack consumes: lookups skip
//! view-confirmed-dead candidates for free (the querier routes around
//! them) while paying a timeout for every dead peer it still *believes*
//! in, and the repair sweep triggers once a death is confirmed in every
//! live view — no oracle call anywhere.
//!
//! Gossip loss is modeled by this module's own `loss_prob`, not by the
//! SimNet drop model, so view evolution is a pure function of
//! `(config, ground-truth schedule, rounds run)` — identical across
//! InProc, SimNet and TcpNet. That is what lets the serving tier run N
//! full copies of this state in lockstep, advanced by broadcast round
//! frames, without ever shipping a view over the wire.

use crate::id::{hash_u64s, splitmix64};
use crate::replica::Membership;

/// Virtual slot index of the per-round resurrection probe (distinct from
/// every real fanout slot so its target pick and loss draw never collide
/// with a normal probe's).
const RESURRECTION_SLOT: u64 = u64::MAX;

/// Knobs of the gossip subsystem. `fanout == 0` (the default) disables
/// gossip entirely: the stack behaves exactly as it did under the
/// membership oracle, byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Probes each live peer sends per round (0 = gossip disabled).
    pub fanout: usize,
    /// Rounds a suspicion must survive unrefuted before the observer
    /// confirms the death. Longer windows tolerate more probe loss
    /// before a false positive; shorter windows detect real deaths
    /// sooner.
    pub suspicion_rounds: u32,
    /// Probability that one probe (and with it the whole exchange) is
    /// lost, drawn from a seeded hash per `(round, sender, target)`.
    /// This is the *gossip channel's* loss — deliberately independent of
    /// any backend's packet-drop model, so views evolve identically on
    /// every backend.
    pub loss_prob: f64,
    /// Seed for every random choice (target picks and loss draws).
    pub seed: u64,
}

impl Default for GossipConfig {
    /// Gossip off (`fanout 0`); the other knobs hold the values the
    /// study found reasonable for a lossless channel.
    fn default() -> Self {
        Self {
            fanout: 0,
            suspicion_rounds: 3,
            loss_prob: 0.0,
            seed: 0x90551b,
        }
    }
}

impl GossipConfig {
    /// Panics on nonsensical parameters (mirrors `HdkConfig::validate`).
    pub fn validate(&self) {
        if self.fanout > 0 {
            assert!(
                self.suspicion_rounds >= 1,
                "gossip suspicion_rounds must be >= 1 when gossip is enabled"
            );
        }
        assert!(
            (0.0..1.0).contains(&self.loss_prob),
            "gossip loss_prob must be in [0, 1), got {}",
            self.loss_prob
        );
    }
}

/// What one observer believes about one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Believed alive.
    Alive,
    /// A probe timed out (or a digest said so); awaiting refutation.
    Suspect,
    /// The suspicion survived the window (or a digest confirmed it):
    /// believed dead. Only an `Alive` claim at a *higher* incarnation —
    /// a refutation by the peer itself — resurrects it.
    Dead,
}

impl Liveness {
    /// Strength order at equal incarnation: `Dead > Suspect > Alive`
    /// (the pessimistic claim wins, as in SWIM).
    fn rank(self) -> u8 {
        match self {
            Liveness::Alive => 0,
            Liveness::Suspect => 1,
            Liveness::Dead => 2,
        }
    }
}

/// One view entry: what the observer believes about one peer, at which
/// incarnation, and — while suspect — since which round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// The believed liveness.
    pub liveness: Liveness,
    /// Incarnation the belief is about. A peer refutes a suspicion of
    /// itself by re-asserting `Alive` at a bumped incarnation.
    pub incarnation: u64,
    /// Round the current suspicion started (meaningful only while
    /// `liveness == Suspect`).
    pub suspected_at: u32,
}

impl ViewEntry {
    fn alive(incarnation: u64) -> Self {
        Self {
            liveness: Liveness::Alive,
            incarnation,
            suspected_at: 0,
        }
    }

    /// True when `other` overrides `self` under SWIM precedence: higher
    /// incarnation always wins; at equal incarnation the stronger
    /// (more pessimistic) liveness wins.
    fn overridden_by(&self, other: &ViewEntry) -> bool {
        other.incarnation > self.incarnation
            || (other.incarnation == self.incarnation
                && other.liveness.rank() > self.liveness.rank())
    }
}

/// One peer's local membership view: a [`ViewEntry`] per peer index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerView {
    entries: Vec<ViewEntry>,
}

impl PeerView {
    fn all_alive(n: usize) -> Self {
        Self {
            entries: vec![ViewEntry::alive(0); n],
        }
    }

    /// The entry for peer `index`.
    pub fn entry(&self, index: usize) -> ViewEntry {
        self.entries[index]
    }

    /// True when this view has confirmed peer `index` dead.
    #[inline]
    pub fn is_confirmed_dead(&self, index: usize) -> bool {
        self.entries[index].liveness == Liveness::Dead
    }

    /// Peers this view does *not* confirm dead (alive or merely suspect).
    pub fn believed_alive_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.liveness != Liveness::Dead)
            .count()
    }
}

/// Wire-shape of one gossip digest: the header plus one encoded entry
/// (peer index, incarnation, liveness tag) per peer the view covers.
/// Both the traffic meters and the SimNet timing pass size gossip
/// payloads with this, so byte counts agree across backends by
/// construction.
pub fn digest_bytes(entries: usize) -> u64 {
    16 + 13 * entries as u64
}

/// One probe exchange (or timed-out probe) of a round, in canonical
/// schedule order — everything the metering and timing passes need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipProbe {
    /// Initiating peer index.
    pub from: u32,
    /// Probed peer index.
    pub to: u32,
    /// True when the probe reached a live target (the exchange completed:
    /// ping + ack, two messages); false when it timed out (one message,
    /// one timeout).
    pub delivered: bool,
    /// Digest payload bytes of *each* message of the exchange.
    pub bytes: u64,
    /// Canonical position within the round (jitter decorrelation).
    pub position: u64,
}

/// What one [`GossipState::run_round`] observed, in canonical order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GossipRound {
    /// The round number that was just run (0-based).
    pub round: u32,
    /// Delivered pings (each also produced an ack).
    pub pings: u64,
    /// Probes that timed out (dead target or gossip-channel loss).
    pub failed: u64,
    /// Digest bytes moved (pings + acks).
    pub bytes: u64,
    /// `(observer, peer)` pairs that newly entered `Suspect` this round.
    pub new_suspects: Vec<(u32, u32)>,
    /// `(observer, peer)` pairs whose suspicion was confirmed `Dead`
    /// this round.
    pub confirmed: Vec<(u32, u32)>,
    /// Peers that, as of the end of this round, are confirmed dead in
    /// **every** ground-truth-live peer's view — and were not before the
    /// round. This is the repair trigger: a universally confirmed death
    /// means no view will route to the peer again, so its copies can be
    /// re-materialized exactly once.
    pub universally_confirmed: Vec<u32>,
}

/// The full gossip substrate: every peer's [`PeerView`] plus the round
/// counter and each peer's own incarnation. One instance covers the
/// whole (simulated) network — the per-peer views are the state the
/// paper's peers would each hold locally.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipState {
    config: GossipConfig,
    round: u32,
    views: Vec<PeerView>,
    /// Each peer's own incarnation (bumped only by refutation).
    incarnations: Vec<u64>,
}

impl GossipState {
    /// All-alive state over `n` peers.
    pub fn new(n: usize, config: GossipConfig) -> Self {
        config.validate();
        assert!(config.fanout > 0, "a GossipState needs fanout >= 1");
        Self {
            config,
            round: 0,
            views: vec![PeerView::all_alive(n); n],
            incarnations: vec![0; n],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Rounds run so far (== the next round number).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of peers the views cover.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True for a state over zero peers (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Peer `observer`'s view.
    pub fn view(&self, observer: usize) -> &PeerView {
        &self.views[observer]
    }

    /// Admits one freshly joined peer: every view (and the joiner's own,
    /// which starts all-alive over the grown population) gains an
    /// `Alive` entry — joins are announced, like graceful departures.
    pub fn add_peer(&mut self) {
        let n = self.views.len() + 1;
        for view in &mut self.views {
            view.entries.push(ViewEntry::alive(0));
        }
        self.views.push(PeerView::all_alive(n));
        self.incarnations.push(0);
    }

    /// Announces a graceful departure: peer `index` is marked `Dead` in
    /// every view at its current incarnation. A leaver says goodbye —
    /// only *crashes* must be detected by probing.
    pub fn mark_departed(&mut self, index: usize) {
        let inc = self.incarnations[index];
        for view in &mut self.views {
            view.entries[index] = ViewEntry {
                liveness: Liveness::Dead,
                incarnation: inc,
                suspected_at: 0,
            };
        }
    }

    /// True when every ground-truth-live peer's view matches the ground
    /// truth: every dead peer confirmed dead, no live peer confirmed
    /// dead (suspicions of live peers are allowed — they refute).
    pub fn converged(&self, truth: &Membership) -> bool {
        (0..self.views.len())
            .filter(|&i| truth.is_live(i))
            .all(|i| {
                self.views[i]
                    .entries
                    .iter()
                    .enumerate()
                    .all(|(j, e)| (e.liveness == Liveness::Dead) != truth.is_live(j))
            })
    }

    /// Live peers (per ground truth) that observer `i`'s view has
    /// falsely confirmed dead.
    pub fn false_positives(&self, truth: &Membership) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, view) in self.views.iter().enumerate() {
            if !truth.is_live(i) {
                continue;
            }
            for (j, e) in view.entries.iter().enumerate() {
                if e.liveness == Liveness::Dead && truth.is_live(j) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    /// Seeded per-probe loss draw: a pure function of
    /// `(seed, round, sender, target, slot)`.
    fn loss_draw(&self, round: u32, i: usize, t: usize, slot: u64) -> bool {
        if self.config.loss_prob == 0.0 {
            return false;
        }
        let draw = splitmix64(hash_u64s(&[
            self.config.seed,
            u64::from(round),
            i as u64,
            t as u64,
            slot,
            0xd20b,
        ]));
        ((draw >> 11) as f64 / (1u64 << 53) as f64) < self.config.loss_prob
    }

    /// Merges the digest of `source`'s view into `dest`'s view under
    /// SWIM precedence. Entries about `dest` itself are left to the
    /// caller's refutation step.
    fn merge_digest(&mut self, source: usize, dest: usize) {
        for j in 0..self.views[source].entries.len() {
            let incoming = self.views[source].entries[j];
            let current = &mut self.views[dest].entries[j];
            if current.overridden_by(&incoming) {
                *current = incoming;
            }
        }
    }

    /// `peer` inspects its own entry in its own view and refutes any
    /// suspicion or death claim that reached it: bump the incarnation
    /// past the claim and re-assert `Alive`. Returns true when a bump
    /// happened (the refutation then spreads via future digests).
    fn refute(&mut self, peer: usize) -> bool {
        let own = self.views[peer].entries[peer];
        if own.liveness == Liveness::Alive {
            return false;
        }
        let bumped = own.incarnation + 1;
        self.incarnations[peer] = self.incarnations[peer].max(bumped);
        self.views[peer].entries[peer] = ViewEntry::alive(self.incarnations[peer]);
        true
    }

    /// Runs one gossip round against the ground truth, in canonical
    /// order (initiators ascending, fanout slots ascending), invoking
    /// `on_probe` for every probe in schedule order. Returns the round
    /// report. Dead peers (ground truth) initiate nothing; their
    /// staleness is the point.
    pub fn run_round(
        &mut self,
        truth: &Membership,
        mut on_probe: impl FnMut(GossipProbe),
    ) -> GossipRound {
        let n = self.views.len();
        assert_eq!(
            truth.len(),
            n,
            "gossip views and ground truth cover different peer sets"
        );
        let round = self.round;
        let mut report = GossipRound {
            round,
            ..GossipRound::default()
        };
        // Who was universally confirmed before the round, so the report
        // can name exactly the deaths that *became* universal now.
        let universal_before: Vec<bool> = (0..n)
            .map(|j| self.universally_confirmed(truth, j))
            .collect();
        let mut position = 0u64;
        for i in 0..n {
            if !truth.is_live(i) {
                continue;
            }
            for slot in 0..self.config.fanout {
                // Candidates: everyone i does not already believe dead
                // (probing a confirmed-dead peer is pointless), minus i.
                let candidates: Vec<usize> = (0..n)
                    .filter(|&j| j != i && !self.views[i].is_confirmed_dead(j))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let pick = hash_u64s(&[self.config.seed, u64::from(round), i as u64, slot as u64])
                    % candidates.len() as u64;
                let t = candidates[pick as usize];
                let bytes = digest_bytes(n);
                let lost = self.loss_draw(round, i, t, slot as u64);
                let delivered = truth.is_live(t) && !lost;
                on_probe(GossipProbe {
                    from: i as u32,
                    to: t as u32,
                    delivered,
                    bytes,
                    position,
                });
                position += 1;
                if delivered {
                    report.pings += 1;
                    report.bytes += 2 * bytes;
                    // Ping: i's digest reaches t; t refutes any claim
                    // about itself the digest (or earlier gossip)
                    // planted, then acks with its own digest — which now
                    // carries the refutation back to i. The ack can
                    // equally carry a claim about *i* (a third party's
                    // suspicion relayed through t), so i refutes too —
                    // without this, a peer everyone has falsely written
                    // off receives no probes and could never learn of
                    // its own death claim.
                    self.merge_digest(i, t);
                    self.refute(t);
                    self.merge_digest(t, i);
                    self.refute(i);
                } else {
                    report.failed += 1;
                    report.bytes += bytes;
                    // Timeout: i starts (or keeps) suspecting t at the
                    // incarnation it currently believes.
                    let entry = &mut self.views[i].entries[t];
                    if entry.liveness == Liveness::Alive {
                        *entry = ViewEntry {
                            liveness: Liveness::Suspect,
                            incarnation: entry.incarnation,
                            suspected_at: round,
                        };
                        report.new_suspects.push((i as u32, t as u32));
                    }
                }
            }
            // Resurrection probe ("gossip to the dead"): one extra probe
            // aimed at a view-confirmed-dead peer, when any exists.
            // Confirmed-dead entries are excluded from the fanout slots,
            // so without this a *false* confirmation can partition the
            // belief graph — two groups that each confirmed the other
            // dead never exchange again and the refutation machinery
            // starves. Probing into the "dead" set is how the partition
            // heals: a delivered probe lets the victim refute on the
            // spot. Truly dead targets just time out without touching
            // the (already Dead) entry.
            let dead_candidates: Vec<usize> = (0..n)
                .filter(|&j| j != i && self.views[i].is_confirmed_dead(j))
                .collect();
            if !dead_candidates.is_empty() {
                let slot = RESURRECTION_SLOT;
                let pick = hash_u64s(&[self.config.seed, u64::from(round), i as u64, slot])
                    % dead_candidates.len() as u64;
                let t = dead_candidates[pick as usize];
                let bytes = digest_bytes(n);
                let lost = self.loss_draw(round, i, t, slot);
                let delivered = truth.is_live(t) && !lost;
                on_probe(GossipProbe {
                    from: i as u32,
                    to: t as u32,
                    delivered,
                    bytes,
                    position,
                });
                position += 1;
                if delivered {
                    report.pings += 1;
                    report.bytes += 2 * bytes;
                    self.merge_digest(i, t);
                    self.refute(t);
                    self.merge_digest(t, i);
                    self.refute(i);
                } else {
                    report.failed += 1;
                    report.bytes += bytes;
                }
            }
        }
        // End of round: unrefuted suspicions older than the window are
        // confirmed dead, observer-ascending then peer-ascending.
        for i in 0..n {
            if !truth.is_live(i) {
                continue;
            }
            for j in 0..n {
                let entry = &mut self.views[i].entries[j];
                if entry.liveness == Liveness::Suspect
                    && round >= entry.suspected_at + self.config.suspicion_rounds - 1
                {
                    entry.liveness = Liveness::Dead;
                    report.confirmed.push((i as u32, j as u32));
                }
            }
        }
        for (j, before) in universal_before.iter().enumerate().take(n) {
            if !before && self.universally_confirmed(truth, j) {
                report.universally_confirmed.push(j as u32);
            }
        }
        self.round += 1;
        report
    }

    /// True when every ground-truth-live peer's view confirms `peer`
    /// dead (vacuously false while any live view still believes in it).
    pub fn universally_confirmed(&self, truth: &Membership, peer: usize) -> bool {
        let mut any = false;
        for i in 0..self.views.len() {
            if !truth.is_live(i) || i == peer {
                continue;
            }
            if !self.views[i].is_confirmed_dead(peer) {
                return false;
            }
            any = true;
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::PeerState;

    fn cfg(fanout: usize, suspicion: u32, loss: f64) -> GossipConfig {
        GossipConfig {
            fanout,
            suspicion_rounds: suspicion,
            loss_prob: loss,
            seed: 42,
        }
    }

    fn run_until_converged(state: &mut GossipState, truth: &Membership, max_rounds: u32) -> u32 {
        for r in 0..max_rounds {
            if state.converged(truth) {
                return r;
            }
            state.run_round(truth, |_| {});
        }
        assert!(
            state.converged(truth),
            "no convergence in {max_rounds} rounds"
        );
        max_rounds
    }

    #[test]
    fn lossless_crash_detection_confirms_in_every_live_view() {
        let mut truth = Membership::new(8);
        let mut state = GossipState::new(8, cfg(2, 3, 0.0));
        truth.mark(3, PeerState::Failed);
        let rounds = run_until_converged(&mut state, &truth, 40);
        assert!(rounds >= 3, "confirmation cannot beat the suspicion window");
        for i in 0..8 {
            if truth.is_live(i) {
                assert!(state.view(i).is_confirmed_dead(3));
            }
        }
        assert!(state.false_positives(&truth).is_empty());
        assert!(state.universally_confirmed(&truth, 3));
    }

    #[test]
    fn rounds_are_deterministic() {
        let mut truth = Membership::new(10);
        truth.mark(7, PeerState::Failed);
        let run = || {
            let mut s = GossipState::new(10, cfg(2, 2, 0.2));
            let mut probes = Vec::new();
            let mut reports = Vec::new();
            for _ in 0..12 {
                reports.push(s.run_round(&truth, |p| probes.push(p)));
            }
            (s, probes, reports)
        };
        let (a, pa, ra) = run();
        let (b, pb, rb) = run();
        assert_eq!(a, b);
        assert_eq!(pa, pb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn graceful_departure_is_announced_not_detected() {
        let mut truth = Membership::new(5);
        let mut state = GossipState::new(5, cfg(1, 3, 0.0));
        truth.mark(2, PeerState::Departed);
        state.mark_departed(2);
        assert!(state.converged(&truth), "a leaver says goodbye");
        let report = state.run_round(&truth, |_| {});
        assert!(report.new_suspects.is_empty());
        assert!(report.confirmed.is_empty());
    }

    #[test]
    fn lossy_false_suspicions_refute_and_never_confirm_with_a_wide_window() {
        // 30% probe loss, everyone actually alive: suspicions happen but
        // a 6-round window gives refutation time to win every race.
        let truth = Membership::new(8);
        let mut state = GossipState::new(8, cfg(3, 6, 0.3));
        let mut suspects = 0u64;
        for _ in 0..60 {
            let report = state.run_round(&truth, |_| {});
            suspects += report.new_suspects.len() as u64;
            assert!(
                state.false_positives(&truth).is_empty(),
                "a live peer was confirmed dead at suspicion window 6"
            );
        }
        assert!(suspects > 0, "30% loss over 60 rounds must suspect someone");
    }

    #[test]
    fn false_confirmation_resurrects_via_refutation() {
        // A brutal channel (80% loss, 1-round window) will falsely
        // confirm live peers dead; a later successful exchange with the
        // "dead" peer must resurrect it (incarnation bump beats Dead).
        let truth = Membership::new(6);
        let mut state = GossipState::new(6, cfg(2, 1, 0.8));
        for _ in 0..200 {
            if !state.false_positives(&truth).is_empty() {
                break;
            }
            state.run_round(&truth, |_| {});
        }
        assert!(
            !state.false_positives(&truth).is_empty(),
            "80% loss at window 1 must confirm falsely"
        );
        // Heal: drop the loss, keep gossiping. Fanout slots never probe
        // confirmed-dead entries, but the resurrection probes do — a
        // delivered one lets the victim refute on the spot, and third
        // parties relay the bumped incarnation onward.
        state.config.loss_prob = 0.0;
        for _ in 0..200 {
            if state.false_positives(&truth).is_empty() {
                break;
            }
            state.run_round(&truth, |_| {});
        }
        assert!(
            state.false_positives(&truth).is_empty(),
            "false confirmations must heal once the channel recovers"
        );
    }

    #[test]
    fn joins_extend_every_view() {
        let mut truth = Membership::new(3);
        let mut state = GossipState::new(3, cfg(1, 2, 0.0));
        truth.add_peer();
        state.add_peer();
        assert_eq!(state.len(), 4);
        assert!(state.converged(&truth));
        for i in 0..4 {
            assert_eq!(state.view(i).believed_alive_count(), 4);
        }
    }

    #[test]
    fn universal_confirmation_fires_exactly_once() {
        let mut truth = Membership::new(6);
        truth.mark(1, PeerState::Failed);
        let mut state = GossipState::new(6, cfg(2, 2, 0.0));
        let mut universal_rounds = Vec::new();
        for _ in 0..30 {
            let report = state.run_round(&truth, |_| {});
            if !report.universally_confirmed.is_empty() {
                universal_rounds.push((report.round, report.universally_confirmed.clone()));
            }
        }
        assert_eq!(
            universal_rounds.len(),
            1,
            "the repair trigger must fire exactly once per death"
        );
        assert_eq!(universal_rounds[0].1, vec![1]);
    }

    #[test]
    fn probe_bytes_match_digest_size() {
        let truth = Membership::new(4);
        let mut state = GossipState::new(4, cfg(1, 2, 0.0));
        let mut seen = Vec::new();
        let report = state.run_round(&truth, |p| seen.push(p));
        assert_eq!(seen.len(), 4, "every live peer probes once at fanout 1");
        for p in &seen {
            assert!(p.delivered);
            assert_eq!(p.bytes, digest_bytes(4));
        }
        assert_eq!(report.bytes, 2 * 4 * digest_bytes(4), "ping + ack each");
        assert_eq!(report.pings, 4);
        assert_eq!(report.failed, 0);
    }

    #[test]
    #[should_panic(expected = "loss_prob")]
    fn config_validates_loss_prob() {
        cfg(1, 2, 1.5).validate();
    }
}
