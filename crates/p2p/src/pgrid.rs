//! P-Grid-style binary-trie overlay — the paper's substrate.
//!
//! P-Grid (Aberer et al.) partitions the key space by binary prefixes: each
//! peer is responsible for all keys whose bit string starts with the peer's
//! *path*. Routing is prefix-correcting: a peer that does not own the key
//! forwards it to a *reference* peer from the complementary subtree at the
//! first diverging bit, so every hop extends the matched prefix by at least
//! one bit and routes take `O(path length) = O(log N)` hops.
//!
//! The trie is built by recursively halving the peer set, which yields the
//! balanced tree an adaptive P-Grid converges to under uniform load
//! (Section 5's experiments use uniformly hashed keys, so this is the
//! steady state). References are chosen deterministically-pseudorandomly
//! per `(peer, level)` as in the real protocol, where each peer knows *some*
//! peer of the complementary subtree, not the best one.

use crate::id::{splitmix64, KeyHash, PeerId};
use crate::overlay::{Overlay, RouteResult};

/// Binary path of a peer: the top `len` bits of `bits` (MSB-first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    bits: u64,
    len: u32,
}

impl Path {
    /// Is this path a prefix of the key's bit string?
    #[inline]
    pub fn is_prefix_of(&self, key: KeyHash) -> bool {
        if self.len == 0 {
            return true;
        }
        (key.0 ^ self.bits) >> (64 - self.len) == 0
    }

    /// First bit position (MSB-first) where `key` diverges from this path,
    /// or `None` if the path is a prefix of the key.
    #[inline]
    pub fn first_divergence(&self, key: KeyHash) -> Option<u32> {
        if self.is_prefix_of(key) {
            None
        } else {
            Some((key.0 ^ self.bits).leading_zeros())
        }
    }

    /// Path length in bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True only for the root path (single-peer network).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[derive(Debug)]
enum Node {
    Leaf(usize),
    Inner(Box<Node>, Box<Node>),
}

/// The P-Grid overlay.
#[derive(Debug)]
pub struct PGrid {
    peers: Vec<PeerId>,
    paths: Vec<Path>,
    root: Node,
    /// Peer indices in in-order trie traversal (ascending path bits) —
    /// the key-space successor order replica placement walks along.
    order: Vec<usize>,
    /// Inverse of `order`: position of each peer index in the traversal.
    order_pos: Vec<usize>,
}

impl PGrid {
    /// Builds a balanced trie over the peers (in the given stable order).
    ///
    /// # Panics
    /// Panics on an empty peer set.
    pub fn new(peers: Vec<PeerId>) -> Self {
        assert!(!peers.is_empty(), "trie needs at least one peer");
        let mut paths = vec![Path { bits: 0, len: 0 }; peers.len()];
        let indices: Vec<usize> = (0..peers.len()).collect();
        let root = Self::split(&indices, 0, 0, &mut paths);
        let mut grid = Self {
            peers,
            paths,
            root,
            order: Vec::new(),
            order_pos: Vec::new(),
        };
        grid.rebuild_order();
        grid
    }

    /// Recomputes the in-order leaf traversal (cheap; runs at build time
    /// and after each join).
    fn rebuild_order(&mut self) {
        fn collect(node: &Node, out: &mut Vec<usize>) {
            match node {
                Node::Leaf(i) => out.push(*i),
                Node::Inner(zero, one) => {
                    collect(zero, out);
                    collect(one, out);
                }
            }
        }
        self.order.clear();
        collect(&self.root, &mut self.order);
        self.order_pos = vec![0; self.order.len()];
        for (pos, &i) in self.order.iter().enumerate() {
            self.order_pos[i] = pos;
        }
    }

    fn split(indices: &[usize], prefix: u64, depth: u32, paths: &mut [Path]) -> Node {
        if indices.len() == 1 {
            paths[indices[0]] = Path {
                bits: prefix,
                len: depth,
            };
            return Node::Leaf(indices[0]);
        }
        assert!(depth < 63, "trie too deep");
        let mid = indices.len() / 2;
        let zero = Self::split(&indices[..mid], prefix, depth + 1, paths);
        let one_prefix = prefix | (1u64 << (63 - depth));
        let one = Self::split(&indices[mid..], one_prefix, depth + 1, paths);
        Node::Inner(Box::new(zero), Box::new(one))
    }

    /// The peer path assigned to `peer_index`.
    pub fn path(&self, peer_index: usize) -> Path {
        self.paths[peer_index]
    }

    /// Leaf reached by following `key`'s bits from the root.
    fn leaf_for(&self, key: KeyHash) -> usize {
        let mut node = &self.root;
        let mut depth = 0u32;
        loop {
            match node {
                Node::Leaf(i) => return *i,
                Node::Inner(zero, one) => {
                    node = if key.bit(depth) { one } else { zero };
                    depth += 1;
                }
            }
        }
    }

    /// Subtree rooted at the first `depth` bits of `key`.
    fn subtree(&self, key: KeyHash, depth: u32) -> &Node {
        let mut node = &self.root;
        for d in 0..depth {
            match node {
                Node::Leaf(_) => return node,
                Node::Inner(zero, one) => {
                    node = if key.bit(d) { one } else { zero };
                }
            }
        }
        node
    }

    /// Deterministic pseudo-random leaf of a subtree (a peer's routing
    /// reference into that subtree).
    fn reference_leaf(node: &Node, selector: u64) -> usize {
        let mut node = node;
        let mut sel = selector;
        loop {
            match node {
                Node::Leaf(i) => return *i,
                Node::Inner(zero, one) => {
                    node = if sel & 1 == 1 { one } else { zero };
                    sel = splitmix64(sel);
                }
            }
        }
    }

    /// Splits the leaf of `target` in two: `target` keeps its path extended
    /// by `0`, the new peer (index `new_index`) takes the path extended by
    /// `1`. This is P-Grid's join protocol: a joining peer meets an
    /// existing one and they divide its key-space half-and-half.
    fn split_leaf(node: &mut Node, target: usize, new_index: usize) -> Option<u32> {
        match node {
            Node::Leaf(i) if *i == target => {
                *node = Node::Inner(
                    Box::new(Node::Leaf(target)),
                    Box::new(Node::Leaf(new_index)),
                );
                Some(0)
            }
            Node::Leaf(_) => None,
            Node::Inner(zero, one) => Self::split_leaf(zero, target, new_index)
                .or_else(|| Self::split_leaf(one, target, new_index))
                .map(|d| d + 1),
        }
    }
}

impl Overlay for PGrid {
    fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    fn peer_index(&self, peer: PeerId) -> usize {
        self.peers
            .iter()
            .position(|&p| p == peer)
            .expect("unknown peer")
    }

    fn responsible(&self, key: KeyHash) -> PeerId {
        self.peers[self.leaf_for(key)]
    }

    fn join(&mut self, peer: PeerId) {
        assert!(
            !self.peers.contains(&peer),
            "{peer} is already in the overlay"
        );
        // Split the shallowest leaf (deterministic tie-break by peer
        // index), keeping the trie balanced as the adaptive protocol would
        // under uniform load.
        let target = (0..self.peers.len())
            .min_by_key(|&i| (self.paths[i].len, i))
            .expect("overlay is non-empty");
        let new_index = self.peers.len();
        self.peers.push(peer);
        let old = self.paths[target];
        assert!(old.len < 62, "trie too deep to split");
        Self::split_leaf(&mut self.root, target, new_index).expect("target leaf exists");
        self.paths[target] = Path {
            bits: old.bits,
            len: old.len + 1,
        };
        self.paths.push(Path {
            bits: old.bits | (1u64 << (63 - old.len)),
            len: old.len + 1,
        });
        self.rebuild_order();
    }

    fn successor_index(&self, peer_index: usize) -> usize {
        self.order[(self.order_pos[peer_index] + 1) % self.order.len()]
    }

    fn route(&self, from: PeerId, key: KeyHash) -> RouteResult {
        let target = self.leaf_for(key);
        let mut cur = self.peer_index(from);
        let mut hops = 0u32;
        while cur != target {
            let path = self.paths[cur];
            let Some(diverge) = path.first_divergence(key) else {
                // Only possible when cur == target; defensive.
                break;
            };
            // The reference peer lives in the subtree that agrees with the
            // key on bits 0..=diverge; pick the peer's (deterministic)
            // reference inside it.
            let subtree = self.subtree(key, diverge + 1);
            let selector = splitmix64(cur as u64 ^ (u64::from(diverge) << 32));
            let next = Self::reference_leaf(subtree, selector);
            debug_assert_ne!(next, cur, "routing made no progress");
            cur = next;
            hops += 1;
            debug_assert!(hops <= 64 + self.peers.len() as u32);
        }
        RouteResult {
            responsible: self.peers[target],
            hops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::hash_u64s;
    use crate::overlay::test_support::{check_balance, check_overlay_contract};

    fn peers(n: u64) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    #[test]
    fn contract_various_sizes() {
        for n in [1, 2, 3, 4, 5, 7, 8, 28, 33] {
            let grid = PGrid::new(peers(n));
            check_overlay_contract(&grid);
        }
    }

    #[test]
    fn paths_are_prefix_free_and_cover() {
        let grid = PGrid::new(peers(11));
        // Every key lands at exactly one leaf whose path prefixes it.
        for k in 0..500u64 {
            let key = KeyHash(hash_u64s(&[k, 3]));
            let owners: Vec<usize> = (0..11)
                .filter(|&i| grid.path(i).is_prefix_of(key))
                .collect();
            assert_eq!(owners.len(), 1, "key {k} has owners {owners:?}");
            assert_eq!(grid.peers()[owners[0]], grid.responsible(key));
        }
    }

    #[test]
    fn path_lengths_are_balanced() {
        let grid = PGrid::new(peers(28));
        let lens: Vec<u32> = (0..28).map(|i| grid.path(i).len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        // ceil(log2(28)) = 5; a halving construction differs by at most 1.
        assert!(max <= 5 && min >= 4, "path lengths {lens:?}");
    }

    #[test]
    fn balanced_ownership() {
        let grid = PGrid::new(peers(32));
        // Power-of-two trie: perfectly uniform key partition.
        check_balance(&grid, 32_000, 1.25);
    }

    #[test]
    fn hops_bounded_by_path_length() {
        let grid = PGrid::new(peers(64));
        for k in 0..1_000u64 {
            let key = KeyHash(hash_u64s(&[k, 9]));
            let from = PeerId(k % 64);
            let r = grid.route(from, key);
            // Each hop corrects at least one prefix bit; paths are 6 bits.
            assert!(r.hops <= 6, "route took {} hops", r.hops);
        }
    }

    #[test]
    fn single_peer_owns_all() {
        let grid = PGrid::new(peers(1));
        let key = KeyHash(hash_u64s(&[42]));
        assert_eq!(grid.responsible(key), PeerId(0));
        assert_eq!(grid.route(PeerId(0), key).hops, 0);
    }

    #[test]
    fn path_prefix_check() {
        // Path "10" (len 2).
        let p = Path {
            bits: 0b10u64 << 62,
            len: 2,
        };
        assert!(p.is_prefix_of(KeyHash(0b101_u64 << 61)));
        assert!(!p.is_prefix_of(KeyHash(0b01u64 << 62)));
        assert!(!p.is_prefix_of(KeyHash(0)));
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_rejected() {
        let _ = PGrid::new(vec![]);
    }
}
