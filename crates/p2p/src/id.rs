//! Identifiers and hashing for the 64-bit DHT key space.
//!
//! All keys (terms and term sets) are mapped into a 64-bit identifier space
//! by a deterministic FNV-1a hash, so simulation runs are exactly
//! reproducible across processes and platforms (no `RandomState`).

use std::fmt;

/// Identifier of a peer `P_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u64);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Position of a key in the DHT identifier space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyHash(pub u64);

impl KeyHash {
    /// Bit `i` (0 = most significant), as used by prefix routing.
    #[inline]
    pub fn bit(self, i: u32) -> bool {
        debug_assert!(i < 64);
        (self.0 >> (63 - i)) & 1 == 1
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a sequence of u64 words (e.g. the term ids of a key).
/// Word boundaries are preserved so `[1, 2]` and `[0x0102]` differ.
pub fn hash_u64s(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        for i in 0..8 {
            h ^= (w >> (8 * i)) & 0xff;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// A splitmix64 step — used where the simulation needs a cheap deterministic
/// pseudo-random choice derived from state (e.g. picking a P-Grid routing
/// reference), never for statistics.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_values() {
        // Known FNV-1a test vectors.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hash_u64s_distinguishes_boundaries() {
        assert_ne!(hash_u64s(&[1, 2]), hash_u64s(&[2, 1]));
        assert_ne!(hash_u64s(&[1]), hash_u64s(&[1, 0]));
        assert_ne!(hash_u64s(&[]), hash_u64s(&[0]));
    }

    #[test]
    fn bit_extraction_msb_first() {
        let k = KeyHash(1u64 << 63);
        assert!(k.bit(0));
        assert!(!k.bit(1));
        let k2 = KeyHash(1);
        assert!(k2.bit(63));
        assert!(!k2.bit(0));
    }

    #[test]
    fn splitmix_changes_input() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_eq!(splitmix64(1), a);
    }
}
