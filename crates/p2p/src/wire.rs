//! Length-framed wire protocol primitives for the serving tier.
//!
//! The multi-process backend (`hdk-core`'s `TcpNet`) ships the typed
//! [`rpc`](crate::rpc) messages over real sockets. This module owns the
//! *transport* half of that contract: a checksummed length-framed byte
//! stream (the same FNV-1a + `[len][checksum][payload]` discipline as
//! `hdk_ir::segment`'s on-disk frames) plus a small fallible
//! reader/writer for the hand-rolled binary encodings layered on top.
//!
//! Design rules:
//!
//! - **Errors, never panics.** Truncated, corrupt or oversized frames
//!   from the network are [`WireError`]s; a malicious or buggy peer must
//!   not be able to bring a process down (pinned by
//!   `crates/core/tests/prop_wire.rs`).
//! - **std-only.** Registry access is unavailable, so there is no serde:
//!   encodings are explicit little-endian puts/takes over `Vec<u8>`.
//! - **Bounded frames.** A frame longer than [`MAX_FRAME_BYTES`] is
//!   rejected before allocation, so a corrupt length prefix costs an
//!   error, not an OOM.

use hdk_ir::checksum64;
use std::io::{Read, Write};

/// Hard upper bound on a single frame's payload (256 MiB). Far above any
/// legitimate message (a full insert round over a big corpus is a few MB)
/// but small enough that a corrupted length prefix cannot trigger a
/// multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

/// Frame header: `[payload len: u32 LE][FNV-1a checksum: u64 LE]` — the
/// same 12-byte layout `hdk_ir::segment` seals to disk.
pub const WIRE_HEADER_BYTES: usize = 12;

/// Everything that can go wrong on the wire. Deliberately coarse: the
/// serving tier's contract is that a dead or malicious peer costs an
/// error (usually a timeout), never a hang or a panic.
#[derive(Debug)]
pub enum WireError {
    /// The payload ended before the decoder was done (or a length prefix
    /// pointed past the end of the buffer).
    Truncated,
    /// The frame checksum did not match, or a decoded value was out of
    /// its domain (bad enum tag, invalid posting block, ...).
    Corrupt,
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized { len: usize, max: usize },
    /// The peer answered, but with something semantically wrong for the
    /// request (protocol-level error string from the remote side).
    Protocol(String),
    /// A socket-level read/write failure other than timeout/close.
    Io(std::io::Error),
    /// The per-request deadline elapsed.
    Timeout,
    /// The peer closed the connection cleanly mid-protocol.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Corrupt => write!(f, "corrupt frame"),
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (max {max})")
            }
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Timeout => write!(f, "request timed out"),
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Closed,
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => WireError::Timeout,
            _ => WireError::Io(e),
        }
    }
}

/// Wire results.
pub type WireResult<T> = Result<T, WireError>;

/// Writes one `[len][checksum][payload]` frame and flushes. The flush
/// matters: requests are written through buffered sockets and the peer
/// won't answer a frame it hasn't seen.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> WireResult<()> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "outgoing frame exceeds MAX_FRAME_BYTES: {}",
        payload.len()
    );
    let mut header = [0u8; WIRE_HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&checksum64(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, verifying length bound and checksum. `UnexpectedEof`
/// maps to [`WireError::Closed`] (clean shutdown between frames is how
/// connections end), timeouts to [`WireError::Timeout`].
pub fn read_frame(r: &mut impl Read) -> WireResult<Vec<u8>> {
    let mut header = [0u8; WIRE_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        // A connection dying mid-frame is a truncation, not a clean close.
        match WireError::from(e) {
            WireError::Closed => WireError::Truncated,
            other => other,
        }
    })?;
    if checksum64(&payload) != checksum {
        return Err(WireError::Corrupt);
    }
    Ok(payload)
}

/// Little-endian writer helpers over a growing `Vec<u8>`. Infallible —
/// encoding only fails by running out of memory.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// `[len: u32][bytes]` — the standard variable-length field.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    assert!(bytes.len() <= u32::MAX as usize, "field exceeds u32 length");
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// A bounds-checked cursor over a received payload. Every accessor
/// returns [`WireError::Truncated`] instead of slicing out of range, so
/// decoders compose with `?` and malformed input can never panic.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `[len: u32][bytes]` field written by [`put_bytes`].
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `[count: u32]` collection-length prefix, bounding it by
    /// the bytes actually remaining (`min_elem_bytes` per element) so a
    /// corrupt count cannot pre-allocate gigabytes.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> WireResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Asserts the payload was consumed exactly — trailing garbage means
    /// encoder and decoder disagree, which is corruption, not slack.
    pub fn done(&self) -> WireResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello hdk serving tier".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf.len(), WIRE_HEADER_BYTES + payload.len());
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        assert!(cursor.is_empty());
    }

    #[test]
    fn empty_frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncated_header_is_closed_or_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        // An empty stream is a clean close; a partial header is not.
        assert!(matches!(read_frame(&mut &buf[..0]), Err(WireError::Closed)));
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Closed | WireError::Truncated),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            // Flipping any bit must never yield the original payload.
            if let Ok(p) = read_frame(&mut &bad[..]) {
                assert_ne!(p, b"payload bytes");
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, 0);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn reader_primitives_roundtrip_and_bound() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_bytes(&mut buf, b"var");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"var");
        r.done().unwrap();
        assert!(matches!(r.u8(), Err(WireError::Truncated)));
    }

    #[test]
    fn corrupt_seq_len_is_truncation_not_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims 4 billion elements...
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.seq_len(8), Err(WireError::Truncated)));
    }
}
