//! Replica placement and peer liveness.
//!
//! The paper runs on a P-Grid overlay whose robustness under churn comes
//! from structural *replication*: every index fraction exists on several
//! peers, so single departures never lose content. This module supplies
//! the two ingredients the [`crate::dht::Dht`] layer needs to model that:
//!
//! * [`Membership`] — the network's peer-liveness view. A peer is
//!   [`Live`](PeerState::Live) until it [`Departed`](PeerState::Departed)
//!   gracefully (handing its copies over) or [`Failed`](PeerState::Failed)
//!   by crashing (its copies are gone). Dead peers stay in the overlay —
//!   peer indices, trie paths and routing stay stable — they are simply
//!   routed *around*.
//! * the **replica walk** — replica placement as a pure deterministic
//!   function of the overlay and the membership view, with **no placement
//!   state**: the replica set of a key is its responsible peer followed by
//!   the next live peers along the overlay's key-space successor order
//!   ([`crate::overlay::Overlay::successor_index`] — in-order trie
//!   traversal, or clockwise on the ring), skipping dead peers. Because
//!   the set is derived, it re-derives itself after every membership
//!   change; repair only has to materialize the copies the new derivation
//!   asks for.
//!
//! Lookups use the same walk as their deterministic *failover order*: the
//! first live replica that holds a copy serves the request; every skipped
//! candidate costs an extra overlay hop, and skipped *dead* candidates
//! additionally cost a retransmission timeout on the simulated network
//! ("requests to dead peers cost a timeout, not a hang"). [`Delivery`]
//! records exactly those resolved attributes per message leg, so the
//! simulated backend can time a message without re-deriving the route.

/// Liveness of one peer, as seen by the membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Member in good standing: hosts its index fraction, serves lookups.
    Live,
    /// Left gracefully: its copies were handed over first, then it
    /// disappeared from the replica walks.
    Departed,
    /// Crashed: its copies are gone; the repair sweep re-materializes them
    /// from surviving replicas.
    Failed,
}

/// One recorded liveness transition: peer `peer` entered `state` as the
/// `seq`-th transition overall (0-based, strictly increasing). Joins are
/// recorded as [`PeerState::Live`] transitions; deaths as
/// [`PeerState::Departed`] / [`PeerState::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// 0-based position in the transition history.
    pub seq: u64,
    /// Peer index the transition applies to.
    pub peer: u32,
    /// The state the peer entered.
    pub state: PeerState,
}

/// The peer-liveness view threaded through every network backend.
///
/// Indexed by *peer index* (position in [`crate::overlay::Overlay::peers`]),
/// which stays stable across joins and departures.
#[derive(Debug, Clone)]
pub struct Membership {
    states: Vec<PeerState>,
    dead: usize,
    /// Ordered transition log ([`Membership::membership_events`]). The
    /// initial all-live population is state, not a transition, so it is
    /// not recorded; everything after construction is.
    events: Vec<MembershipEvent>,
}

impl Membership {
    /// All-live membership for `n` peers.
    pub fn new(n: usize) -> Self {
        Self {
            states: vec![PeerState::Live; n],
            dead: 0,
            events: Vec::new(),
        }
    }

    /// Registers a freshly joined peer (always live).
    pub fn add_peer(&mut self) {
        let peer = self.states.len() as u32;
        self.states.push(PeerState::Live);
        self.push_event(peer, PeerState::Live);
    }

    fn push_event(&mut self, peer: u32, state: PeerState) {
        let seq = self.events.len() as u64;
        self.events.push(MembershipEvent { seq, peer, state });
    }

    /// The ordered liveness-transition history since construction: every
    /// join ([`PeerState::Live`]), graceful departure and crash, in the
    /// order they were applied. This is the *ground truth* schedule the
    /// gossip layer's convergence is measured against — and the read-back
    /// `fail_peers` / `leave_peers` never had.
    pub fn membership_events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// The state of peer `index`.
    pub fn state(&self, index: usize) -> PeerState {
        self.states[index]
    }

    /// True when peer `index` is live.
    #[inline]
    pub fn is_live(&self, index: usize) -> bool {
        self.states[index] == PeerState::Live
    }

    /// True while nobody has departed or failed — the fast path on which
    /// every walk is just its first element (the responsible peer).
    #[inline]
    pub fn all_live(&self) -> bool {
        self.dead == 0
    }

    /// Number of live peers.
    pub fn live_count(&self) -> usize {
        self.states.len() - self.dead
    }

    /// Total number of peers ever admitted (live or dead).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True for a view over zero peers (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Marks a live peer departed or failed.
    ///
    /// # Panics
    /// Panics when the peer is already dead or the transition target is
    /// [`PeerState::Live`] (dead peers never come back; a returning node
    /// joins as a new peer).
    pub fn mark(&mut self, index: usize, state: PeerState) {
        assert!(
            state != PeerState::Live,
            "dead peers cannot be revived; rejoin as a new peer"
        );
        assert!(
            self.is_live(index),
            "peer index {index} is already {:?}",
            self.states[index]
        );
        self.states[index] = state;
        self.dead += 1;
        self.push_event(index as u32, state);
    }
}

/// One resolved message leg: where it was served/stored and what the
/// resolution cost, as derived from overlay + membership at dispatch time.
///
/// The simulated-network backend times messages from these records (link
/// identity, hops, dead skips) instead of re-running the overlay's routing
/// — the metering pass and the timing pass share one derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Peer the leg originates from (the querying/inserting peer, or the
    /// forwarding replica for replica copies and repairs).
    pub source: crate::id::PeerId,
    /// Peer that stored the copy / served the lookup.
    pub target: crate::id::PeerId,
    /// Overlay hops the leg traversed, including one per skipped
    /// candidate of the failover walk.
    pub hops: u32,
    /// Dead candidates the walk skipped before reaching `target` — each
    /// costs a retransmission timeout on the simulated network.
    pub dead_skips: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_counts_and_marks() {
        let mut m = Membership::new(4);
        assert!(m.all_live());
        assert_eq!(m.live_count(), 4);
        m.mark(1, PeerState::Departed);
        m.mark(3, PeerState::Failed);
        assert!(!m.all_live());
        assert_eq!(m.live_count(), 2);
        assert!(m.is_live(0) && !m.is_live(1) && m.is_live(2) && !m.is_live(3));
        assert_eq!(m.state(1), PeerState::Departed);
        assert_eq!(m.state(3), PeerState::Failed);
        m.add_peer();
        assert_eq!(m.len(), 5);
        assert!(m.is_live(4));
        assert_eq!(m.live_count(), 3);
    }

    #[test]
    fn membership_events_record_ordered_transitions() {
        let mut m = Membership::new(3);
        assert!(
            m.membership_events().is_empty(),
            "initial population is state, not transitions"
        );
        m.mark(2, PeerState::Failed);
        m.add_peer();
        m.mark(0, PeerState::Departed);
        let events = m.membership_events();
        assert_eq!(
            events,
            &[
                MembershipEvent {
                    seq: 0,
                    peer: 2,
                    state: PeerState::Failed
                },
                MembershipEvent {
                    seq: 1,
                    peer: 3,
                    state: PeerState::Live
                },
                MembershipEvent {
                    seq: 2,
                    peer: 0,
                    state: PeerState::Departed
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "already")]
    fn double_death_rejected() {
        let mut m = Membership::new(2);
        m.mark(0, PeerState::Failed);
        m.mark(0, PeerState::Departed);
    }

    #[test]
    #[should_panic(expected = "revived")]
    fn revival_rejected() {
        let mut m = Membership::new(2);
        m.mark(0, PeerState::Live);
    }
}
