//! Peer-join (churn) tests: overlay invariants survive joins and the DHT
//! migrates exactly the keys the new peer owns.

use hdk_p2p::{hash_u64s, ChordRing, Dht, KeyHash, MsgKind, Overlay, PGrid, PeerId};

fn peers(n: u64) -> Vec<PeerId> {
    (0..n).map(PeerId).collect()
}

fn check_contract<O: Overlay>(overlay: &O) {
    for k in 0..300u64 {
        let key = KeyHash(hash_u64s(&[k, 5]));
        let owner = overlay.responsible(key);
        assert!(overlay.peers().contains(&owner));
        for &from in overlay.peers().iter().take(6) {
            let r = overlay.route(from, key);
            assert_eq!(r.responsible, owner);
        }
    }
}

#[test]
fn pgrid_join_preserves_contract_and_balance() {
    let mut grid = PGrid::new(peers(5));
    for new in 5..13u64 {
        grid.join(PeerId(new));
        check_contract(&grid);
    }
    assert_eq!(grid.len(), 13);
    // Splitting the shallowest leaf keeps paths within one bit of balance.
    let lens: Vec<u32> = (0..13).map(|i| grid.path(i).len()).collect();
    let (min, max) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
    assert!(max - min <= 1, "paths unbalanced after joins: {lens:?}");
}

#[test]
fn chord_join_preserves_contract() {
    let mut ring = ChordRing::new(peers(4));
    for new in 4..12u64 {
        ring.join(PeerId(new));
        check_contract(&ring);
    }
    assert_eq!(ring.len(), 12);
}

#[test]
#[should_panic(expected = "already")]
fn duplicate_join_rejected() {
    let mut grid = PGrid::new(peers(3));
    grid.join(PeerId(1));
}

#[test]
fn dht_migration_moves_exactly_new_peers_keys() {
    let mut dht: Dht<Vec<u32>> = Dht::new(Box::new(PGrid::new(peers(4))));
    for k in 0..400u64 {
        let key = KeyHash(hash_u64s(&[k, 11]));
        dht.upsert(PeerId(k % 4), key, 2, 8, Vec::new, |v| v.push(k as u32));
    }
    let before_total = dht.num_keys();

    let stats = dht.add_peer(PeerId(99), |v| (v.len() as u64, v.len() as u64 * 4));
    assert_eq!(dht.num_keys(), before_total, "keys must not be lost");
    assert!(stats.keys_moved > 0, "the new peer must take over keys");
    assert_eq!(stats.postings_moved, stats.keys_moved); // one entry each here

    // The new peer's shard holds exactly the keys it is responsible for,
    // and every key is still reachable with its value intact.
    let per_peer = dht.keys_per_peer();
    assert_eq!(per_peer[4] as u64, stats.keys_moved);
    for k in 0..400u64 {
        let key = KeyHash(hash_u64s(&[k, 11]));
        let found = dht.lookup(PeerId(0), key, |v| (v.cloned(), 0, 0));
        assert_eq!(found.unwrap(), vec![k as u32], "key {k} lost after join");
    }
    // Migration metered as maintenance, not as indexing/retrieval cost.
    let snap = dht.snapshot();
    assert_eq!(
        snap.kind(MsgKind::Maintenance).postings,
        stats.postings_moved
    );
}

#[test]
fn repeated_joins_keep_dht_consistent() {
    let mut dht: Dht<u64> = Dht::new(Box::new(ChordRing::new(peers(2))));
    for k in 0..200u64 {
        dht.upsert(
            PeerId(k % 2),
            KeyHash(hash_u64s(&[k])),
            1,
            8,
            || 0,
            |v| *v += k,
        );
    }
    for new in 2..8u64 {
        dht.add_peer(PeerId(new), |_| (1, 8));
        for k in 0..200u64 {
            let got = dht.peek(KeyHash(hash_u64s(&[k])), |v| v.copied());
            assert_eq!(got, Some(k), "key {k} lost after join of peer {new}");
        }
    }
    assert_eq!(dht.num_keys(), 200);
}
