//! Property tests for the overlays and the DHT: the Overlay contract on
//! arbitrary peer populations, and lookup-after-insert identity under
//! arbitrary operation sequences.

use hdk_p2p::{hash_u64s, ChordRing, Dht, KeyHash, Overlay, PGrid, PeerId};
use proptest::prelude::*;
use std::collections::HashMap;

fn peer_ids(n: usize) -> Vec<PeerId> {
    (0..n as u64).map(PeerId).collect()
}

proptest! {
    #[test]
    fn pgrid_contract(n in 1usize..40, keys in prop::collection::vec(any::<u64>(), 1..60)) {
        let grid = PGrid::new(peer_ids(n));
        for &k in &keys {
            let key = KeyHash(hash_u64s(&[k]));
            let owner = grid.responsible(key);
            // Exactly one peer owns the key, and routing agrees from
            // several origins.
            for &from in grid.peers().iter().step_by((n / 5).max(1)) {
                let r = grid.route(from, key);
                prop_assert_eq!(r.responsible, owner);
                if from == owner {
                    prop_assert_eq!(r.hops, 0);
                }
                // Prefix routing corrects one bit per hop.
                prop_assert!(r.hops <= 64);
            }
        }
    }

    #[test]
    fn chord_contract(n in 1usize..40, keys in prop::collection::vec(any::<u64>(), 1..60)) {
        let ring = ChordRing::new(peer_ids(n));
        for &k in &keys {
            let key = KeyHash(hash_u64s(&[k]));
            let owner = ring.responsible(key);
            for &from in ring.peers().iter().step_by((n / 5).max(1)) {
                let r = ring.route(from, key);
                prop_assert_eq!(r.responsible, owner);
                if from == owner {
                    prop_assert_eq!(r.hops, 0);
                }
                prop_assert!((r.hops as usize) <= n);
            }
        }
    }

    #[test]
    fn overlays_agree_on_ownership_uniqueness(
        n in 2usize..20,
        k in any::<u64>(),
    ) {
        // Both overlays assign every key to exactly one peer from the
        // same population (not necessarily the same peer).
        let key = KeyHash(hash_u64s(&[k]));
        let grid = PGrid::new(peer_ids(n));
        let ring = ChordRing::new(peer_ids(n));
        prop_assert!(grid.peers().contains(&grid.responsible(key)));
        prop_assert!(ring.peers().contains(&ring.responsible(key)));
    }

    #[test]
    fn dht_matches_hashmap_model(
        n in 1usize..12,
        ops in prop::collection::vec((any::<u8>(), 0u64..30, 0u32..100), 1..120),
    ) {
        // The DHT with integer values must behave exactly like a local
        // HashMap under an arbitrary interleaving of upserts and lookups.
        let dht: Dht<u64> = Dht::new(Box::new(PGrid::new(peer_ids(n))));
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (op, key_seed, val) in ops {
            let key = KeyHash(hash_u64s(&[key_seed]));
            let from = PeerId(u64::from(val) % n as u64);
            if op % 3 != 0 {
                dht.upsert(from, key, 1, 8, || 0, |v| *v += u64::from(val));
                *model.entry(key.0).or_insert(0) += u64::from(val);
            } else {
                let got = dht.lookup(from, key, |v| (v.copied(), 0, 0));
                prop_assert_eq!(got, model.get(&key.0).copied());
            }
        }
        // Final state matches.
        for (k, v) in &model {
            let got = dht.peek(KeyHash(*k), |e| e.copied());
            prop_assert_eq!(got, Some(*v));
        }
        prop_assert_eq!(dht.num_keys(), model.len());
    }
}
