//! Experiment configuration: the paper's Table 2 scaled to laptop size,
//! with CLI overrides.
//!
//! The paper's setup (Table 2): N = 4..28 peers joining 4 at a time, 5,000
//! documents per peer (~225 words each), `DFmax ∈ {400, 500}`,
//! `Ff = 100,000`, `w = 20`, `smax = 3`. The default profile shrinks the
//! per-peer load while keeping every *ratio* the paper relies on (DFmax
//! relative to collection size, Ff relative to sample size) — see
//! `HdkConfig::scaled_for` — so the measured curves keep their shape.
//! `--scale` (or explicit flags) restores any size up to the paper's.

use hdk_core::{HdkConfig, OverlayKind};
use hdk_corpus::{GeneratorConfig, QueryLogConfig};

/// Full description of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentProfile {
    /// Network sizes for the growth sweep (paper: 4, 8, ..., 28).
    pub peers_sweep: Vec<usize>,
    /// Documents contributed by each peer (paper: 5,000).
    pub docs_per_peer: usize,
    /// Mean document length in words (paper: ~225).
    pub avg_doc_len: usize,
    /// Global vocabulary size of the synthetic collection.
    pub vocab_size: usize,
    /// `DFmax` values to compare (paper: 400 and 500).
    pub dfmax_values: Vec<u32>,
    /// Very-frequent-term threshold `Ff` (paper: 100,000).
    pub ff: u64,
    /// Proximity window `w` (paper: 20).
    pub window: usize,
    /// Maximal key size `smax` (paper: 3).
    pub smax: usize,
    /// Queries evaluated per sweep point (paper: 3,000 for its final
    /// collection; scaled here).
    pub num_queries: usize,
    /// Minimum (disjunctive) hits for a query to enter the log
    /// (paper: >20 on 140k documents; scaled).
    pub min_hits: usize,
    /// Master seed.
    pub seed: u64,
    /// Routing substrate.
    pub overlay: OverlayKind,
}

impl Default for ExperimentProfile {
    fn default() -> Self {
        Self {
            peers_sweep: vec![4, 8, 12, 16, 20, 24, 28],
            docs_per_peer: 400,
            avg_doc_len: 80,
            vocab_size: 20_000,
            dfmax_values: vec![30, 40],
            ff: 3_000,
            window: 20,
            smax: 3,
            num_queries: 200,
            min_hits: 10,
            seed: 0xD15C0,
            overlay: OverlayKind::PGrid,
        }
    }
}

impl ExperimentProfile {
    /// Parses command-line overrides. Unknown flags abort with usage.
    ///
    /// Supported: `--scale F` (multiplies docs-per-peer), `--peers a,b,c`,
    /// `--docs-per-peer N`, `--dfmax a,b`, `--queries N`, `--seed N`,
    /// `--window N`, `--smax N`, `--ff N`, `--overlay pgrid|chord`,
    /// `--doc-len N`, `--vocab N`, `--min-hits N`.
    pub fn from_args() -> Self {
        let mut profile = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--help" || flag == "-h" {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            let Some(value) = args.get(i + 1) else {
                eprintln!("missing value for {flag}\n{USAGE}");
                std::process::exit(2);
            };
            match flag {
                "--scale" => {
                    let f: f64 = value.parse().expect("--scale takes a number");
                    profile.docs_per_peer =
                        ((profile.docs_per_peer as f64 * f).round() as usize).max(10);
                }
                "--peers" => profile.peers_sweep = parse_list(value),
                "--docs-per-peer" => profile.docs_per_peer = value.parse().expect("number"),
                "--dfmax" => {
                    profile.dfmax_values = parse_list(value).into_iter().map(|v| v as u32).collect()
                }
                "--queries" => profile.num_queries = value.parse().expect("number"),
                "--seed" => profile.seed = value.parse().expect("number"),
                "--window" => profile.window = value.parse().expect("number"),
                "--smax" => profile.smax = value.parse().expect("number"),
                "--ff" => profile.ff = value.parse().expect("number"),
                "--doc-len" => profile.avg_doc_len = value.parse().expect("number"),
                "--vocab" => profile.vocab_size = value.parse().expect("number"),
                "--min-hits" => profile.min_hits = value.parse().expect("number"),
                "--overlay" => {
                    profile.overlay = match value.as_str() {
                        "pgrid" => OverlayKind::PGrid,
                        "chord" => OverlayKind::Chord,
                        other => {
                            eprintln!("unknown overlay {other:?}\n{USAGE}");
                            std::process::exit(2);
                        }
                    }
                }
                other => {
                    eprintln!("unknown flag {other:?}\n{USAGE}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        profile
    }

    /// Largest collection size in the sweep.
    pub fn max_docs(&self) -> usize {
        self.peers_sweep.iter().max().copied().unwrap_or(0) * self.docs_per_peer
    }

    /// Generator configuration for a collection of `num_docs` documents.
    /// Topic structure scales with the collection so co-occurrence density
    /// stays comparable across scales.
    pub fn generator_config(&self, num_docs: usize) -> GeneratorConfig {
        GeneratorConfig {
            num_docs,
            vocab_size: self.vocab_size,
            skew: 1.1,
            avg_doc_len: self.avg_doc_len,
            doc_len_sigma: 0.35,
            num_topics: (num_docs / 40).clamp(20, 2_000),
            topic_vocab: 120,
            topics_per_doc: 3,
            topic_mix: 0.45,
            seed: self.seed,
        }
    }

    /// HDK model configuration for one `DFmax` value.
    pub fn hdk_config(&self, dfmax: u32) -> HdkConfig {
        HdkConfig {
            dfmax,
            smax: self.smax,
            window: self.window,
            ff: self.ff,
            exact_intrinsic: false,
            redundancy_filtering: true,
            replication: 1,
            hot_threshold: 0,
            hot_extra: 1,
            store: hdk_core::StoreConfig::from_env(),
            codec: hdk_core::codec_from_env(),
            gossip: hdk_p2p::GossipConfig::default(),
        }
    }

    /// Query-log configuration.
    pub fn querylog_config(&self) -> QueryLogConfig {
        QueryLogConfig {
            num_queries: self.num_queries,
            min_terms: 2,
            max_terms: 8,
            window: self.window,
            min_hits: self.min_hits,
            seed: self.seed ^ 0x9E3779B97F4A7C15,
        }
    }
}

const USAGE: &str = "\
usage: <experiment> [--scale F] [--peers a,b,c] [--docs-per-peer N]
                    [--dfmax a,b] [--queries N] [--seed N] [--window N]
                    [--smax N] [--ff N] [--doc-len N] [--vocab N]
                    [--min-hits N] [--overlay pgrid|chord]
Defaults reproduce the paper's setup scaled to laptop size; use
--scale 12.5 --dfmax 400,500 --ff 100000 --doc-len 225 for Table 2 scale.";

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|p| p.trim().parse().expect("comma-separated numbers"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let p = ExperimentProfile::default();
        assert_eq!(p.peers_sweep, vec![4, 8, 12, 16, 20, 24, 28]);
        assert_eq!(p.window, 20);
        assert_eq!(p.smax, 3);
        assert_eq!(p.dfmax_values.len(), 2);
        assert_eq!(p.max_docs(), 28 * 400);
    }

    #[test]
    fn generator_config_scales_topics() {
        let p = ExperimentProfile::default();
        let small = p.generator_config(800);
        let large = p.generator_config(8_000);
        assert!(large.num_topics > small.num_topics);
        assert_eq!(small.seed, large.seed);
    }

    #[test]
    fn parse_list_handles_spaces() {
        assert_eq!(parse_list("4, 8,12"), vec![4, 8, 12]);
    }
}
