//! The simulated-network latency sweep: one scenario (build + query
//! batch), replayed over `SimNet` configurations from LAN-fast to lossy
//! WAN, reporting what the paper's message counts *cost in time* once a
//! network model sits under them.
//!
//! Counts are backend-invariant (the RPC layer's contract), so every sweep
//! point moves the identical messages — the table isolates the pure
//! latency/queueing/loss dimension: per-kind mean / p99 / max delivery
//! latency, retransmissions, and the virtual makespan of the whole
//! scenario.

use crate::json::Json;
use hdk_core::{BackendConfig, HdkConfig, HdkNetwork, OverlayKind};
use hdk_corpus::{
    partition_documents, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::{MsgKind, PeerId, SimNetConfig};
use hdk_text::TermId;

/// One sweep point: the network model and what the scenario cost under it.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Label for the table (e.g. "lan", "wan", "lossy-wan").
    pub label: &'static str,
    /// The simulated network.
    pub config: SimNetConfig,
    /// Mean / p99 / max query-response latency, nanoseconds.
    pub response_mean_ns: f64,
    /// Coarse p99 bucket bound of the response latency.
    pub response_p99_ns: u64,
    /// Slowest response delivery.
    pub response_max_ns: u64,
    /// Mean insert delivery latency, nanoseconds.
    pub insert_mean_ns: f64,
    /// Retransmissions across all kinds (drop model).
    pub retries: u64,
    /// Payload bytes those retransmissions re-sent — the wire overhead of
    /// loss, kept apart from the logical byte meters (which count each
    /// message once at any loss rate).
    pub retransmission_bytes: u64,
    /// Total virtual network time of the scenario, nanoseconds.
    pub virtual_ns: u64,
}

/// The sweep's network models: an in-rack LAN, a WAN, and a lossy WAN.
pub fn sweep_configs() -> Vec<(&'static str, SimNetConfig)> {
    vec![
        (
            "lan",
            SimNetConfig {
                seed: 7,
                hop_ns: 50_000, // 50 µs per hop
                jitter_ns: 10_000,
                ns_per_byte: 1, // ~8 Gbit/s
                drop_prob: 0.0,
                timeout_ns: 1_000_000,
            },
        ),
        (
            "wan",
            SimNetConfig {
                seed: 7,
                hop_ns: 15_000_000, // 15 ms per hop
                jitter_ns: 5_000_000,
                ns_per_byte: 8, // ~1 Gbit/s
                drop_prob: 0.0,
                timeout_ns: 50_000_000,
            },
        ),
        (
            "lossy-wan",
            SimNetConfig {
                seed: 7,
                hop_ns: 15_000_000,
                jitter_ns: 5_000_000,
                ns_per_byte: 8,
                drop_prob: 0.02,
                timeout_ns: 50_000_000,
            },
        ),
    ]
}

/// Builds the scenario once per configuration and measures it. `docs`
/// documents over `peers` peers, `queries` replayed queries drawn from a
/// log of the same size by the shared corpus-crate Zipf sampler
/// ([`QueryLog::zipf_replay`]) — `skew == 0` replays a flat stream,
/// higher skews concentrate the replay on the head of the log.
pub fn run_latency_sweep(
    peers: usize,
    docs: usize,
    queries: usize,
    skew: f64,
) -> Vec<LatencyPoint> {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: docs,
        vocab_size: (docs * 12).max(2_000),
        avg_doc_len: 60,
        num_topics: (docs / 12).max(8),
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(docs, peers, 29);
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: queries,
            ..QueryLogConfig::default()
        },
    );
    let replay = log.zipf_replay(skew, queries, 0x5EED);

    sweep_configs()
        .into_iter()
        .map(|(label, config)| {
            let network = HdkNetwork::build_with(
                &collection,
                &partitions,
                HdkConfig {
                    dfmax: 20,
                    ff: 3_000,
                    ..HdkConfig::default()
                },
                OverlayKind::PGrid,
                BackendConfig::SimNet(config),
            );
            let service = network.query_service();
            let batch: Vec<(PeerId, &[TermId])> = replay
                .iter()
                .enumerate()
                .map(|(pos, &qi)| {
                    (
                        PeerId(pos as u64 % peers as u64),
                        log.queries[qi].terms.as_slice(),
                    )
                })
                .collect();
            let _ = service.query_batch(&batch, 20);
            let snap = service.snapshot();
            let response = snap.latency(MsgKind::QueryResponse);
            let insert = snap.latency(MsgKind::IndexInsert);
            LatencyPoint {
                label,
                config,
                response_mean_ns: response.mean_ns(),
                response_p99_ns: response.quantile_ns(0.99),
                response_max_ns: response.max_ns,
                insert_mean_ns: insert.mean_ns(),
                retries: MsgKind::ALL.iter().map(|&k| snap.latency(k).retries).sum(),
                retransmission_bytes: MsgKind::ALL
                    .iter()
                    .map(|&k| snap.latency(k).retransmission_bytes)
                    .sum(),
                virtual_ns: service.virtual_time_ns(),
            }
        })
        .collect()
}

/// Renders the sweep as an aligned table on stdout.
pub fn print_latency_sweep(points: &[LatencyPoint]) {
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>11} {:>12}",
        "network",
        "resp mean",
        "resp p99",
        "resp max",
        "ins mean",
        "retries",
        "retx bytes",
        "virtual"
    );
    let ms = |ns: f64| format!("{:.3}ms", ns / 1e6);
    for p in points {
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>11} {:>12}",
            p.label,
            ms(p.response_mean_ns),
            ms(p.response_p99_ns as f64),
            ms(p.response_max_ns as f64),
            ms(p.insert_mean_ns),
            p.retries,
            p.retransmission_bytes,
            ms(p.virtual_ns as f64),
        );
    }
}

/// Renders the sweep as a JSON document (the `--json` path of the
/// `latency_sweep` binary).
pub fn latency_sweep_json(points: &[LatencyPoint]) -> String {
    Json::obj([
        ("bench", "latency_sweep".into()),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("network", p.label.into()),
                    ("response_mean_ns", p.response_mean_ns.into()),
                    ("response_p99_ns", p.response_p99_ns.into()),
                    ("response_max_ns", p.response_max_ns.into()),
                    ("insert_mean_ns", p.insert_mean_ns.into()),
                    ("retries", p.retries.into()),
                    ("retransmission_bytes", p.retransmission_bytes.into()),
                    ("virtual_ns", p.virtual_ns.into()),
                ])
            })),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_orders_by_network_speed() {
        let points = run_latency_sweep(4, 150, 20, 0.0);
        assert_eq!(points.len(), 3);
        let (lan, wan, lossy) = (&points[0], &points[1], &points[2]);
        assert!(lan.response_mean_ns > 0.0, "LAN must still take time");
        assert!(
            wan.response_mean_ns > lan.response_mean_ns * 10.0,
            "WAN hops dominate: {} vs {}",
            wan.response_mean_ns,
            lan.response_mean_ns
        );
        assert_eq!(lan.retries + wan.retries, 0, "lossless configs never retry");
        assert_eq!(lan.retransmission_bytes + wan.retransmission_bytes, 0);
        assert!(lossy.retries > 0, "2% drop must force retransmissions");
        assert!(
            lossy.retransmission_bytes > 0,
            "retransmitted payloads must be measurable"
        );
        assert!(
            lossy.response_mean_ns >= wan.response_mean_ns,
            "loss can only slow the same message stream down"
        );
        assert!(lan.virtual_ns < wan.virtual_ns);
    }

    #[test]
    fn json_rendering_covers_every_point() {
        let points = run_latency_sweep(4, 120, 10, 1.2);
        let json = latency_sweep_json(&points);
        assert!(json.starts_with('{') && json.ends_with('}'));
        for p in &points {
            assert!(json.contains(&format!("\"network\":\"{}\"", p.label)));
        }
        assert!(json.contains("\"virtual_ns\":"));
    }
}
