//! The availability study: what structural replication buys under peer
//! failure, and what it costs.
//!
//! For each replication factor `R ∈ {1, 2, 3}` the study builds the same
//! collection over the same peers on the simulated network, then walks one
//! failure episode end to end:
//!
//! 1. **healthy** — a query batch against the intact network (baseline
//!    latency);
//! 2. **crash** — `kill` peers fail at once (no handover); the damage
//!    report counts lost and degraded entries;
//! 3. **degraded** — the same query batch during degradation: per-key
//!    failover serves surviving replicas, dead-primary lookups pay
//!    retransmission timeouts, and any *lost* content surfaces as queries
//!    diverging from the never-failed reference;
//! 4. **repair** — the background sweep re-materializes missing copies
//!    (its traffic is the `Repair` category);
//! 5. **repaired** — the query batch once more: with `R ≥ 2` and a single
//!    crash, answers must be bit-identical to the never-failed network.
//!
//! The headline numbers: at `R = 1` a single crash silently loses index
//! fractions (diverged queries, nonzero loss); at `R = 2` the same crash
//! loses nothing, costs one repair wave, and only shows up as degraded
//! query latency until the sweep runs.

use crate::report::{fnum, Table};
use hdk_core::{BackendConfig, HdkConfig, HdkNetwork, OverlayKind, QueryService};
use hdk_corpus::{
    partition_documents, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::{MsgKind, PeerId, SimNetConfig, TrafficSnapshot};
use hdk_text::TermId;

/// One `(R, kill)` episode's measurements.
#[derive(Debug, Clone)]
pub struct AvailabilityPoint {
    /// Replication factor.
    pub replication: usize,
    /// Peers killed in the crash wave.
    pub killed: usize,
    /// Stored keys before the crash.
    pub keys_total: u64,
    /// Entries destroyed outright (last copy died).
    pub keys_lost: u64,
    /// Postings those entries carried.
    pub postings_lost: u64,
    /// Entries left under-replicated until repair.
    pub keys_degraded: u64,
    /// Repair messages / postings / bytes the sweep moved.
    pub repair_messages: u64,
    /// Postings re-materialized by the repair sweep.
    pub repair_postings: u64,
    /// Bytes re-materialized by the repair sweep.
    pub repair_bytes: u64,
    /// Mean query-response delivery latency, healthy network (ns).
    pub healthy_mean_ns: f64,
    /// Mean during degradation (failover timeouts included), ns.
    pub degraded_mean_ns: f64,
    /// Mean after repair, ns.
    pub repaired_mean_ns: f64,
    /// Failover/drop retransmissions during the degraded batch.
    pub degraded_retries: u64,
    /// Bytes those retransmissions re-sent (separate from logical bytes).
    pub degraded_retransmission_bytes: u64,
    /// Queries whose top-k diverged from the never-failed reference,
    /// during degradation (content loss surfaces here at `R = 1`).
    pub diverged_degraded: usize,
    /// Diverged queries after repair (must be 0 whenever nothing was
    /// lost).
    pub diverged_repaired: usize,
}

type Digest = Vec<(u32, u64)>;

fn digests(service: &QueryService, from: PeerId, queries: &[(u32, Vec<TermId>)]) -> Vec<Digest> {
    queries
        .iter()
        .map(|(_, terms)| {
            service
                .query(from, terms, 20)
                .results
                .iter()
                .map(|r| (r.doc.0, r.score.to_bits()))
                .collect()
        })
        .collect()
}

fn response_mean(now: &TrafficSnapshot, before: &TrafficSnapshot) -> f64 {
    now.since(before).latency(MsgKind::QueryResponse).mean_ns()
}

/// Runs the study: `docs` documents over `peers` peers, `queries` log
/// queries per phase, killing `kill` peers per episode, for
/// `R ∈ {1, 2, 3}`.
///
/// # Panics
/// Panics unless `peers > kill` (somebody must survive).
pub fn run_availability_study(
    peers: usize,
    docs: usize,
    queries: usize,
    kill: usize,
) -> Vec<AvailabilityPoint> {
    assert!(peers > kill, "the crash wave must leave survivors");
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: docs,
        vocab_size: (docs * 12).max(2_000),
        avg_doc_len: 60,
        num_topics: (docs / 12).max(8),
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(docs, peers, 29);
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: queries,
            ..QueryLogConfig::default()
        },
    );
    let query_set: Vec<(u32, Vec<TermId>)> = log
        .queries
        .iter()
        .map(|q| (q.id, q.terms.clone()))
        .collect();
    // A WAN with meaningful timeouts, so failover degradation is visible.
    let sim = SimNetConfig {
        seed: 29,
        hop_ns: 400_000,
        jitter_ns: 100_000,
        ns_per_byte: 8,
        drop_prob: 0.0,
        timeout_ns: 25_000_000,
    };
    let survivor = PeerId(kill as u64); // first peer the wave spares

    (1..=3usize)
        .map(|replication| {
            let config = HdkConfig {
                ff: (docs as u64 * 20).max(2_000),
                dfmax: (docs as u32 / 10).max(10),
                replication,
                ..HdkConfig::default()
            };
            // Never-failed reference (outcomes are backend-invariant, so
            // the cheap in-process build provides the expected digests).
            let reference =
                HdkNetwork::build(&collection, &partitions, config.clone(), OverlayKind::PGrid);
            let expected = digests(&reference.query_service(), survivor, &query_set);

            let mut network = HdkNetwork::build_with(
                &collection,
                &partitions,
                config,
                OverlayKind::PGrid,
                BackendConfig::SimNet(sim),
            );
            let keys_total = network.index().index_counts().total_keys();
            let service = network.query_service();

            let t0 = service.snapshot();
            let healthy = digests(&service, survivor, &query_set);
            assert_eq!(healthy, expected, "healthy network diverged");
            let t1 = service.snapshot();

            let victims: Vec<PeerId> = (0..kill as u64).map(PeerId).collect();
            let loss = network.fail_peers(victims);

            let degraded = digests(&network.query_service(), survivor, &query_set);
            let t2 = network.snapshot();
            let degraded_window = t2.since(&t1);
            let repair = network.repair();
            let t3 = network.snapshot();
            let repaired = digests(&network.query_service(), survivor, &query_set);
            let t4 = network.snapshot();

            let diverge =
                |got: &[Digest]| got.iter().zip(&expected).filter(|(g, w)| g != w).count();
            AvailabilityPoint {
                replication,
                killed: kill,
                keys_total,
                keys_lost: loss.keys_lost,
                postings_lost: loss.postings_lost,
                keys_degraded: loss.keys_degraded,
                repair_messages: repair.copies,
                repair_postings: repair.postings,
                repair_bytes: repair.bytes,
                healthy_mean_ns: response_mean(&t1, &t0),
                degraded_mean_ns: response_mean(&t2, &t1),
                repaired_mean_ns: response_mean(&t4, &t3),
                degraded_retries: degraded_window.latency(MsgKind::QueryLookup).retries,
                degraded_retransmission_bytes: degraded_window
                    .latency(MsgKind::QueryLookup)
                    .retransmission_bytes,
                diverged_degraded: diverge(&degraded),
                diverged_repaired: diverge(&repaired),
            }
        })
        .collect()
}

/// Renders the study as an aligned table (and TSV).
pub fn print_availability_study(points: &[AvailabilityPoint]) {
    let mut table = Table::new(
        "availability",
        &[
            "R",
            "killed",
            "keys",
            "lost",
            "degraded",
            "repair_msgs",
            "repair_post",
            "q_healthy",
            "q_degraded",
            "q_repaired",
            "retries",
            "retx_bytes",
            "bad_deg",
            "bad_rep",
        ],
    );
    let ms = |ns: f64| format!("{:.2}ms", ns / 1e6);
    for p in points {
        table.row(&[
            p.replication.to_string(),
            p.killed.to_string(),
            p.keys_total.to_string(),
            p.keys_lost.to_string(),
            p.keys_degraded.to_string(),
            p.repair_messages.to_string(),
            p.repair_postings.to_string(),
            ms(p.healthy_mean_ns),
            ms(p.degraded_mean_ns),
            ms(p.repaired_mean_ns),
            p.degraded_retries.to_string(),
            p.degraded_retransmission_bytes.to_string(),
            p.diverged_degraded.to_string(),
            p.diverged_repaired.to_string(),
        ]);
    }
    table.emit();
    let _ = fnum(0.0); // keep the formatting helper linked for TSV users
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_crash_episode_has_the_expected_shape() {
        let points = run_availability_study(6, 150, 12, 1);
        assert_eq!(points.len(), 3);
        let (r1, r2, r3) = (&points[0], &points[1], &points[2]);
        // R=1: real loss, nothing repairable, diverged answers persist.
        assert!(r1.keys_lost > 0, "R=1 must lose the victim's fraction");
        assert_eq!(r1.repair_messages, 0);
        assert!(r1.diverged_repaired > 0, "lost content cannot come back");
        // R=2 and R=3: zero loss, repair traffic flows, answers identical
        // after (and even during) the degradation window.
        for p in [r2, r3] {
            assert_eq!(p.keys_lost, 0, "R={} lost content", p.replication);
            assert!(p.repair_messages > 0);
            assert_eq!(p.diverged_degraded, 0);
            assert_eq!(p.diverged_repaired, 0);
            assert!(
                p.degraded_retries > 0,
                "dead-primary lookups must pay timeouts"
            );
            assert!(p.degraded_retransmission_bytes > 0);
            assert!(p.degraded_mean_ns > p.healthy_mean_ns);
        }
        // Replication multiplies what a crash degrades, and repair moves
        // at least as much at R=3 as at R=2.
        assert!(r3.repair_postings >= r2.repair_postings);
    }
}
