//! The read-scaling study: what a Zipf-skewed query stream costs the
//! replicas that serve it, and what each of the three read-path levers
//! buys back.
//!
//! The paper's retrieval cost model (Section 4.2) counts transmitted
//! postings per query; this study asks the orthogonal throughput
//! question: when the *stream* is skewed — real query logs are Zipf
//! distributed — how unevenly does the serving load land on peers, and
//! how far do (1) replica load spreading over `R` static replicas,
//! (2) popularity-driven hot-key replication, and (3) the TTL'd query
//! cache flatten it? Three legs, all asserted by [`run_read_scaling`]:
//!
//! * **Spread grid** — `R ∈ {1, 2, 3}` × `s ∈ {0, 0.8, 1.2}` over the
//!   simulated WAN: per-replica served-lookup max/mean, lookup messages,
//!   p50/p99 response latency. Pinned: at `R = 3, s = 1.2` the maximum
//!   per-peer load stays within 1.3× the mean.
//! * **Cache leg** — the stream's top-decile (head) queries replayed
//!   uncached vs through a TTL'd [`QueryCache`]. Pinned: the cache cuts
//!   the head's lookup messages at least 5×.
//! * **Hot-replication leg** — `R = 1` with popularity replication on:
//!   the same skewed stream before and after one `rebalance_hot` pass.
//!   Pinned: keys get promoted and the hottest peer's served load drops.

use crate::json::Json;
use crate::report::{fnum, Table};
use hdk_core::{
    BackendConfig, HdkConfig, HdkNetwork, OverlayKind, QueryCache, QueryService, StoreConfig,
};
use hdk_corpus::{
    partition_documents, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::{MsgKind, PeerId, TrafficSnapshot};
use hdk_text::TermId;

/// One cell of the spread grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Static replication factor `R`.
    pub replication: usize,
    /// Zipf skew `s` of the replayed stream (0 = uniform).
    pub skew: f64,
    /// Metered `QueryLookup` messages of the replay.
    pub lookup_messages: u64,
    /// Served lookups of the most-loaded peer.
    pub served_max: u64,
    /// Mean served lookups per peer.
    pub served_mean: f64,
    /// Median simulated response latency (log₂ bucket bound), ns.
    pub response_p50_ns: u64,
    /// p99 simulated response latency (log₂ bucket bound), ns.
    pub response_p99_ns: u64,
}

impl GridPoint {
    /// Load-imbalance ratio `max / mean` (the spread invariant's metric).
    pub fn imbalance(&self) -> f64 {
        self.served_max as f64 / self.served_mean.max(f64::MIN_POSITIVE)
    }
}

/// The cache leg: head-of-stream lookup messages, uncached vs cached.
#[derive(Debug, Clone)]
pub struct CacheStudy {
    /// Distinct head (top-decile) queries.
    pub head_queries: usize,
    /// Times the stream replayed one of them.
    pub head_replays: usize,
    /// Lookup messages those replays cost without a cache.
    pub cold_lookups: u64,
    /// Lookup messages with the TTL'd cache (first occurrence warms it).
    pub warm_lookups: u64,
}

/// The hot-replication leg: one skewed pass, a rebalance, the same pass.
#[derive(Debug, Clone)]
pub struct HotStudy {
    /// Keys promoted by the rebalance pass.
    pub promoted: u64,
    /// Extra copies it materialized.
    pub copies: u64,
    /// Most-loaded peer's served lookups before promotion.
    pub before_max: u64,
    /// Mean served lookups per peer before promotion.
    pub before_mean: f64,
    /// Most-loaded peer's served lookups after promotion.
    pub after_max: u64,
    /// Mean served lookups per peer after promotion.
    pub after_mean: f64,
}

/// The full study.
#[derive(Debug, Clone)]
pub struct ReadScalingReport {
    /// The spread grid, `R`-major.
    pub points: Vec<GridPoint>,
    /// The cache leg (measured at `R = 3`, `s = 1.2`).
    pub cache: CacheStudy,
    /// The hot-replication leg (measured at `R = 1`, `s = 1.2`).
    pub hot: HotStudy,
}

/// `R` values of the grid.
pub const REPLICATIONS: [usize; 3] = [1, 2, 3];
/// Zipf skews of the grid.
pub const SKEWS: [f64; 3] = [0.0, 0.8, 1.2];
/// The spread invariant: at `R = 3, s = 1.2`, `max ≤ 1.3 × mean`.
pub const SPREAD_BOUND: f64 = 1.3;

/// Per-peer served-lookup max and mean of one measured phase.
fn served_stats(delta: &TrafficSnapshot) -> (u64, f64) {
    let served = &delta.served_by_peer;
    let max = served.iter().copied().max().unwrap_or(0);
    let mean = served.iter().sum::<u64>() as f64 / served.len().max(1) as f64;
    (max, mean)
}

/// Replays `schedule` as one batch (batch position salts the replica
/// pick, so identical queries rotate over their holders) and returns the
/// phase's traffic delta.
fn replay_batch(
    service: &QueryService,
    log: &QueryLog,
    schedule: &[usize],
    peers: usize,
) -> TrafficSnapshot {
    let batch: Vec<(PeerId, &[TermId])> = schedule
        .iter()
        .enumerate()
        .map(|(pos, &qi)| {
            (
                PeerId(pos as u64 % peers as u64),
                log.queries[qi].terms.as_slice(),
            )
        })
        .collect();
    let before = service.snapshot();
    let _ = service.query_batch(&batch, 10);
    service.snapshot().since(&before)
}

/// Runs the full study: `docs` documents over `peers` peers, a log of
/// `queries` queries, `samples` Zipf-weighted replays per leg.
///
/// # Panics
/// Panics when any of the three pinned invariants fails — the binary is
/// its own acceptance check, like `availability` and `restart_study`.
pub fn run_read_scaling(
    peers: usize,
    docs: usize,
    queries: usize,
    samples: usize,
) -> ReadScalingReport {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: docs,
        vocab_size: (docs * 12).max(2_000),
        avg_doc_len: 60,
        num_topics: (docs / 12).max(8),
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(docs, peers, 29);
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: queries,
            ..QueryLogConfig::default()
        },
    );
    assert!(log.len() >= 10, "need a log to draw a top decile from");
    // A generous DFmax keeps every single-term key discriminative: each
    // query costs exactly its term lookups, all present in the index, so
    // the grid isolates *where the serves land* from the key-expansion
    // machinery (which `prop_query_pipeline` already pins).
    let config = |replication: usize, hot_threshold: u64, hot_extra: usize| HdkConfig {
        dfmax: 1_000_000,
        ff: u64::MAX,
        replication,
        hot_threshold,
        hot_extra,
        store: StoreConfig::from_env(),
        ..HdkConfig::default()
    };
    // The WAN model from the canonical latency sweep: nonzero hop cost
    // makes the p50/p99 columns meaningful.
    let sim = crate::latency::sweep_configs()
        .into_iter()
        .find(|(l, _)| *l == "wan")
        .expect("wan model in sweep_configs")
        .1;
    let build = |cfg: HdkConfig| {
        HdkNetwork::build_with(
            &collection,
            &partitions,
            cfg,
            OverlayKind::PGrid,
            BackendConfig::SimNet(sim),
        )
    };

    // Leg 1: the spread grid.
    let mut points = Vec::new();
    for &replication in &REPLICATIONS {
        for &skew in &SKEWS {
            let schedule = log.zipf_replay(skew, samples, 0x5EED);
            let network = build(config(replication, 0, 1));
            let service = network.query_service();
            let delta = replay_batch(&service, &log, &schedule, peers);
            let (served_max, served_mean) = served_stats(&delta);
            let response = delta.latency(MsgKind::QueryResponse);
            points.push(GridPoint {
                replication,
                skew,
                lookup_messages: delta.kind(MsgKind::QueryLookup).messages,
                served_max,
                served_mean,
                response_p50_ns: response.quantile_ns(0.5),
                response_p99_ns: response.quantile_ns(0.99),
            });
        }
    }
    let pinned = points
        .iter()
        .find(|p| p.replication == 3 && p.skew == 1.2)
        .expect("grid covers R=3, s=1.2");
    assert!(
        pinned.imbalance() <= SPREAD_BOUND,
        "spread invariant violated at R=3, s=1.2: max {} vs mean {:.1} \
         (ratio {:.3} > {SPREAD_BOUND})",
        pinned.served_max,
        pinned.served_mean,
        pinned.imbalance(),
    );

    // Leg 2: the cache. Replays of the stream's top-decile queries,
    // uncached vs through the TTL'd cache (its first occurrence of each
    // query warms it; every later replay is a hit).
    let head_queries = (log.len() / 10).max(1);
    let schedule = log.zipf_replay(1.2, samples, 0x5EED);
    let head_replays: Vec<usize> = schedule
        .iter()
        .copied()
        .filter(|&qi| qi < head_queries)
        .collect();
    assert!(
        head_replays.len() >= 10,
        "a s=1.2 stream must keep revisiting its head"
    );
    let network = build(config(3, 0, 1));
    let service = network.query_service();
    let run_head = |cache: Option<&QueryCache>| -> u64 {
        let before = service.snapshot();
        for (pos, &qi) in head_replays.iter().enumerate() {
            let from = PeerId(pos as u64 % peers as u64);
            let terms = &log.queries[qi].terms;
            match cache {
                Some(c) => {
                    let _ = service.query_cached(from, terms, 10, c);
                }
                None => {
                    let _ = service.query(from, terms, 10);
                }
            }
        }
        service
            .snapshot()
            .since(&before)
            .kind(MsgKind::QueryLookup)
            .messages
    };
    let cold_lookups = run_head(None);
    let cache = QueryCache::with_ttl(4_096, 4, 2);
    let warm_lookups = run_head(Some(&cache));
    assert!(
        warm_lookups * 5 <= cold_lookups,
        "TTL cache must cut head lookups >= 5x: cold {cold_lookups}, warm {warm_lookups}"
    );

    // Leg 3: hot-key replication at R = 1. One skewed pass accumulates
    // hit counters, one rebalance materializes extra replicas of the
    // promoted keys, and the identical pass afterwards spreads over them.
    let hot_threshold = (samples as u64 / 10).max(2);
    let network = build(config(1, hot_threshold, 2));
    let (mut indexer, service) = network.into_services();
    let before_delta = replay_batch(&service, &log, &schedule, peers);
    let (before_max, before_mean) = served_stats(&before_delta);
    let stats = indexer.rebalance_hot();
    let after_delta = replay_batch(&service, &log, &schedule, peers);
    let (after_max, after_mean) = served_stats(&after_delta);
    assert!(
        stats.promoted > 0 && stats.copies > 0,
        "the skewed stream must promote hot keys (threshold {hot_threshold}): {stats:?}"
    );
    assert!(
        after_max < before_max,
        "promotion must unload the hottest peer: before {before_max}, after {after_max}"
    );

    ReadScalingReport {
        points,
        cache: CacheStudy {
            head_queries,
            head_replays: head_replays.len(),
            cold_lookups,
            warm_lookups,
        },
        hot: HotStudy {
            promoted: stats.promoted,
            copies: stats.copies,
            before_max,
            before_mean,
            after_max,
            after_mean,
        },
    }
}

/// Renders the study as aligned tables (stdout + TSV).
pub fn print_read_scaling(report: &ReadScalingReport) {
    let mut grid = Table::new(
        "read_scaling_grid",
        &[
            "R", "skew", "lookups", "srv max", "srv mean", "max/mean", "p50 ms", "p99 ms",
        ],
    );
    for p in &report.points {
        grid.row(&[
            p.replication.to_string(),
            fnum(p.skew),
            p.lookup_messages.to_string(),
            p.served_max.to_string(),
            fnum(p.served_mean),
            fnum(p.imbalance()),
            fnum(p.response_p50_ns as f64 / 1e6),
            fnum(p.response_p99_ns as f64 / 1e6),
        ]);
    }
    grid.emit();
    let c = &report.cache;
    println!(
        "cache: {} head queries replayed {} times — lookups {} cold vs {} warm ({}x)",
        c.head_queries,
        c.head_replays,
        c.cold_lookups,
        c.warm_lookups,
        fnum(c.cold_lookups as f64 / (c.warm_lookups.max(1)) as f64),
    );
    let h = &report.hot;
    println!(
        "hot-replication (R=1): {} promoted, {} copies — served max {} -> {} \
         (mean {} -> {})",
        h.promoted,
        h.copies,
        h.before_max,
        h.after_max,
        fnum(h.before_mean),
        fnum(h.after_mean),
    );
}

/// Renders the study as the `BENCH_read_scaling.json` artifact.
pub fn read_scaling_json(report: &ReadScalingReport) -> String {
    Json::obj([
        ("bench", "read_scaling".into()),
        ("spread_bound", SPREAD_BOUND.into()),
        (
            "grid",
            Json::arr(report.points.iter().map(|p| {
                Json::obj([
                    ("replication", p.replication.into()),
                    ("skew", p.skew.into()),
                    ("lookup_messages", p.lookup_messages.into()),
                    ("served_max", p.served_max.into()),
                    ("served_mean", p.served_mean.into()),
                    ("imbalance", p.imbalance().into()),
                    ("response_p50_ns", p.response_p50_ns.into()),
                    ("response_p99_ns", p.response_p99_ns.into()),
                ])
            })),
        ),
        (
            "cache",
            Json::obj([
                ("head_queries", report.cache.head_queries.into()),
                ("head_replays", report.cache.head_replays.into()),
                ("cold_lookups", report.cache.cold_lookups.into()),
                ("warm_lookups", report.cache.warm_lookups.into()),
            ]),
        ),
        (
            "hot",
            Json::obj([
                ("promoted", report.hot.promoted.into()),
                ("copies", report.hot.copies.into()),
                ("before_max", report.hot.before_max.into()),
                ("before_mean", report.hot.before_mean.into()),
                ("after_max", report.hot.after_max.into()),
                ("after_mean", report.hot.after_mean.into()),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_holds_its_invariants_at_test_scale() {
        // `run_read_scaling` asserts the three pinned invariants itself;
        // this exercises them at a scale CI's unit pass can afford.
        let report = run_read_scaling(4, 150, 20, 200);
        assert_eq!(report.points.len(), 9);
        // Spread monotonicity at the steepest skew: more replicas, less
        // imbalance.
        let imbalance = |r: usize| {
            report
                .points
                .iter()
                .find(|p| p.replication == r && p.skew == 1.2)
                .expect("grid point")
                .imbalance()
        };
        assert!(
            imbalance(3) < imbalance(1),
            "R=3 must beat R=1 on the skewed stream: {} vs {}",
            imbalance(3),
            imbalance(1)
        );
        let json = read_scaling_json(&report);
        assert!(json.contains("\"bench\":\"read_scaling\""));
        assert!(json.contains("\"hot\""));
    }
}
