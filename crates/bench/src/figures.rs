//! Table builders: one function per paper table/figure, consuming the
//! sweep measurements. Binaries stay one-liners and `experiments` composes
//! everything.

use crate::profile::ExperimentProfile;
use crate::report::{fnum, Table};
use crate::runner::PointMeasurement;
use hdk_corpus::{CollectionGenerator, QueryLog};
use hdk_ir::CentralizedEngine;

/// Table 1 — collection statistics (paper: Wikipedia; here: the synthetic
/// substitute at the sweep's final size, plus the paper's own numbers for
/// side-by-side comparison).
pub fn table1(profile: &ExperimentProfile) -> Table {
    let collection =
        CollectionGenerator::new(profile.generator_config(profile.max_docs())).generate();
    let s = collection.stats();
    let mut t = Table::new(
        "table1_collection_stats",
        &["statistic", "this_run", "paper_wikipedia"],
    );
    t.row(&[
        "total number of documents M".to_owned(),
        s.num_documents.to_string(),
        "653,546".to_owned(),
    ]);
    t.row(&[
        "size in words D".to_owned(),
        s.sample_size.to_string(),
        "~147 million (225 x M)".to_owned(),
    ]);
    t.row(&[
        "average document size".to_owned(),
        format!("{:.1}", s.avg_doc_len),
        "225 words".to_owned(),
    ]);
    t.row(&[
        "vocabulary size |T|".to_owned(),
        s.vocab_size.to_string(),
        "(not reported)".to_owned(),
    ]);
    t
}

/// Table 2 — experiment parameters, this run vs the paper.
pub fn table2(profile: &ExperimentProfile) -> Table {
    let mut t = Table::new("table2_parameters", &["parameter", "this_run", "paper"]);
    let peers = profile
        .peers_sweep
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let dfmax = profile
        .dfmax_values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" and ");
    t.row(&[
        "number of peers N".to_owned(),
        peers,
        "4, 8, ..., 28".to_owned(),
    ]);
    t.row(&[
        "documents per peer".to_owned(),
        profile.docs_per_peer.to_string(),
        "5,000".to_owned(),
    ]);
    t.row(&[
        "words per peer l".to_owned(),
        (profile.docs_per_peer * profile.avg_doc_len).to_string(),
        "1,123,000".to_owned(),
    ]);
    t.row(&["DFmax".to_owned(), dfmax, "400 and 500".to_owned()]);
    t.row(&[
        "Ff".to_owned(),
        profile.ff.to_string(),
        "100,000".to_owned(),
    ]);
    t.row(&["w".to_owned(), profile.window.to_string(), "20".to_owned()]);
    t.row(&["smax".to_owned(), profile.smax.to_string(), "3".to_owned()]);
    t.row(&[
        "queries".to_owned(),
        profile.num_queries.to_string(),
        "3,000 (>20 hits, 2-8 terms)".to_owned(),
    ]);
    t
}

/// Figure 3 — stored postings per peer (index size) vs collection size.
pub fn fig3(points: &[PointMeasurement]) -> Table {
    let mut headers = vec!["docs".to_owned(), "ST".to_owned()];
    for (dfmax, _) in &points[0].hdk {
        headers.push(format!("HDK_DFmax={dfmax}"));
    }
    let mut t = Table::new(
        "fig3_stored_postings_per_peer",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for p in points {
        let mut row = vec![p.docs.to_string(), fnum(p.st.stored_per_peer)];
        for (_, m) in &p.hdk {
            row.push(fnum(m.stored_per_peer));
        }
        t.row(&row);
    }
    t
}

/// Figure 4 — inserted postings per peer (indexing cost) vs collection size.
pub fn fig4(points: &[PointMeasurement]) -> Table {
    let mut headers = vec!["docs".to_owned(), "ST".to_owned()];
    for (dfmax, _) in &points[0].hdk {
        headers.push(format!("HDK_DFmax={dfmax}"));
    }
    let mut t = Table::new(
        "fig4_inserted_postings_per_peer",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for p in points {
        let mut row = vec![p.docs.to_string(), fnum(p.st.inserted_per_peer)];
        for (_, m) in &p.hdk {
            row.push(fnum(m.inserted_per_peer));
        }
        t.row(&row);
    }
    t
}

/// Figure 5 — `IS_s / D` ratios vs collection size (for the first
/// configured DFmax, as in the paper's single-threshold plot).
pub fn fig5(points: &[PointMeasurement]) -> Table {
    let dfmax = points[0].hdk[0].0;
    let mut t = Table::new(
        "fig5_is_over_d",
        &["docs", "IS1/D", "IS2/D", "IS3/D", "IS/D"],
    );
    for p in points {
        let m = &p
            .hdk
            .iter()
            .find(|(d, _)| *d == dfmax)
            .expect("dfmax present at every point")
            .1;
        t.row(&[
            p.docs.to_string(),
            fnum(m.is_ratios[0]),
            fnum(m.is_ratios[1]),
            fnum(m.is_ratios[2]),
            fnum(m.is_ratio_total),
        ]);
    }
    t
}

/// Figure 6 — retrieved postings per query vs collection size.
pub fn fig6(points: &[PointMeasurement]) -> Table {
    let mut headers = vec!["docs".to_owned(), "ST".to_owned()];
    for (dfmax, _) in &points[0].hdk {
        headers.push(format!("HDK_DFmax={dfmax}"));
    }
    let mut t = Table::new(
        "fig6_retrieved_postings_per_query",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for p in points {
        let mut row = vec![p.docs.to_string(), fnum(p.st.retrieval_per_query)];
        for (_, m) in &p.hdk {
            row.push(fnum(m.retrieval_per_query));
        }
        t.row(&row);
    }
    t
}

/// Figure 7 — top-20 overlap with the centralized BM25 engine, percent.
pub fn fig7(points: &[PointMeasurement]) -> Table {
    let mut headers = vec!["docs".to_owned(), "ST".to_owned()];
    for (dfmax, _) in &points[0].hdk {
        headers.push(format!("HDK_DFmax={dfmax}"));
    }
    let mut t = Table::new(
        "fig7_top20_overlap_pct",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for p in points {
        let mut row = vec![p.docs.to_string(), fnum(p.st.overlap_top20)];
        for (_, m) in &p.hdk {
            row.push(fnum(m.overlap_top20));
        }
        t.row(&row);
    }
    t
}

/// Figure 8 — estimated total (indexing + retrieval) traffic per month vs
/// collection size, using a [`hdk_model::TrafficModel`] calibrated from
/// the sweep's largest point, alongside the paper-calibrated model.
pub fn fig8(
    points: &[PointMeasurement],
    queries_per_period: f64,
) -> (Table, hdk_model::TrafficModel) {
    let last = points.last().expect("sweep has points");
    let (_, hdk) = &last.hdk[0];
    let measured = hdk_model::TrafficModel {
        st_postings_per_doc: last.st.postings_per_doc,
        hdk_postings_per_doc: hdk.postings_per_doc,
        st_retrieval_per_query_per_doc: last.st.retrieval_per_query / last.docs as f64,
        hdk_retrieval_per_query: hdk.retrieval_per_query,
        queries_per_period,
    };
    let paper = hdk_model::TrafficModel::paper_calibration();
    let mut t = Table::new(
        "fig8_total_traffic",
        &[
            "docs",
            "ST_measured_model",
            "HDK_measured_model",
            "ratio_measured",
            "ratio_paper_model",
        ],
    );
    for exp in 5..=9 {
        for mant in [1.0, 2.0, 5.0] {
            let m = mant * 10f64.powi(exp);
            t.row(&[
                format!("{m:.0e}"),
                fnum(measured.st_total(m)),
                fnum(measured.hdk_total(m)),
                fnum(measured.ratio(m)),
                fnum(paper.ratio(m)),
            ]);
        }
    }
    (t, measured)
}

/// Helper for binaries needing a query log + centralized engine at one
/// collection size (ablations).
pub fn centralized_and_log(
    profile: &ExperimentProfile,
    collection: &hdk_corpus::Collection,
) -> (CentralizedEngine, QueryLog) {
    let central = CentralizedEngine::build(collection);
    let log = QueryLog::generate_filtered(collection, &profile.querylog_config(), |terms| {
        central.count_hits(terms)
    });
    (central, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SystemMeasurement;

    fn fake_point(docs: usize) -> PointMeasurement {
        let m = SystemMeasurement {
            stored_per_peer: docs as f64,
            inserted_per_peer: docs as f64 * 1.5,
            is_ratios: [0.9, 2.0, 0.5, 0.0],
            is_ratio_total: 3.4,
            postings_per_doc: 130.0,
            retrieval_per_query: docs as f64 * 0.15,
            lookups_per_query: 3.9,
            fanout_per_level: [2.8, 1.1, 0.2, 0.0],
            overlap_top20: 80.0,
            queries: 10,
        };
        PointMeasurement {
            peers: docs / 100,
            docs,
            sample_size: docs as u64 * 80,
            st: m.clone(),
            hdk: vec![(30, m.clone()), (40, m)],
        }
    }

    #[test]
    fn figure_tables_have_one_row_per_point() {
        let points = vec![fake_point(400), fake_point(800)];
        for t in [
            fig3(&points),
            fig4(&points),
            fig5(&points),
            fig6(&points),
            fig7(&points),
        ] {
            assert_eq!(t.len(), 2);
        }
    }

    #[test]
    fn fig8_calibrates_from_last_point() {
        let points = vec![fake_point(400), fake_point(800)];
        let (t, model) = fig8(&points, 1.5e6);
        assert!(!t.is_empty());
        assert!((model.st_postings_per_doc - 130.0).abs() < 1e-9);
        assert!((model.st_retrieval_per_query_per_doc - 0.15).abs() < 1e-9);
    }

    #[test]
    fn static_tables_build() {
        let p = ExperimentProfile {
            peers_sweep: vec![2],
            docs_per_peer: 60,
            vocab_size: 1_000,
            avg_doc_len: 30,
            ..ExperimentProfile::default()
        };
        assert!(!table2(&p).is_empty());
        assert!(!table1(&p).is_empty());
    }
}
