//! Availability under peer failure: vary `R ∈ {1, 2, 3}`, kill `k` peers,
//! measure content loss, repair traffic, and query latency during the
//! degradation window.
//!
//! ```text
//! cargo run -p hdk-bench --release --bin availability -- [peers] [docs] [queries] [kill]
//! ```
//!
//! Doubles as the CI smoke check: it *asserts* the replication contract —
//! with `R = 2` a single-peer crash loses zero content (post-repair
//! answers bit-identical to a never-failed network) while the repair
//! counters are nonzero, and with `R = 1` the same crash demonstrably
//! loses index fractions — exiting nonzero when any of that breaks.

use hdk_bench::{print_availability_study, run_availability_study};

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let peers = arg(1, 8);
    let docs = arg(2, 240);
    let queries = arg(3, 24);
    let kill = arg(4, 1);
    println!(
        "availability study: {peers} peers, {docs} docs, {queries} queries, kill {kill} — R in {{1, 2, 3}}\n"
    );
    let points = run_availability_study(peers, docs, queries, kill);
    print_availability_study(&points);

    // The contract the CI smoke run enforces.
    let r1 = &points[0];
    let r2 = &points[1];
    assert!(
        r1.keys_lost > 0,
        "R=1 kill={kill} lost nothing — the study is vacuous"
    );
    assert_eq!(
        r2.keys_lost, 0,
        "R=2 kill={kill} lost {} keys — replication is broken",
        r2.keys_lost
    );
    assert!(
        r2.repair_messages > 0,
        "R=2 repaired nothing — the crash never degraded a replica set"
    );
    assert_eq!(
        r2.diverged_repaired, 0,
        "R=2 post-repair answers diverged from the never-failed network"
    );
    println!("availability contract holds: R=2 survives a {kill}-peer crash with zero loss");
}
