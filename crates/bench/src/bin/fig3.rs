//! Figure 3 of the paper — see `hdk_bench::figures::fig3`.

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    let points = run_growth_sweep(&profile);
    println!("{}\n", TITLE);
    figures::fig3(&points).emit();
}

const TITLE: &str = "Figure 3 — stored postings per peer (index size)";
