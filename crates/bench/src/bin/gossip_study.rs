//! Gossip failure detection: sweep `fanout × suspicion window × probe
//! loss`, crash one peer per episode, measure rounds-to-convergence,
//! probe traffic, false-positive transients and the failover timeouts
//! queries pay while views are stale.
//!
//! ```text
//! cargo run -p hdk-bench --release --bin gossip_study -- [peers] [docs] [queries]
//! ```
//!
//! Doubles as the CI smoke check: the study asserts the detection
//! contract as it runs — loss-free probing never falsely kills a live
//! peer, every grid point converges within the round budget, universal
//! confirmation fires the repair sweep without an operator, and
//! converged views pay zero failover timeouts — exiting nonzero when any
//! of that breaks. Emits the machine-readable artifact
//! `BENCH_gossip.json` in the working directory.

use hdk_bench::gossip::{gossip_json, print_gossip_study, run_gossip_study};

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let peers = arg(1, 8);
    let docs = arg(2, 240);
    let queries = arg(3, 24);
    println!(
        "gossip study: {peers} peers, {docs} docs, {queries} queries — \
         fanout in {{1,2,3}} x window in {{2,3}} x loss in {{0,0.2}}\n"
    );
    let points = run_gossip_study(peers, docs, queries);
    print_gossip_study(&points);
    let json = gossip_json(&points);
    let path = "BENCH_gossip.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => eprintln!("[gossip_study] wrote {path}"),
        Err(e) => eprintln!("note: could not write {path}: {e}"),
    }
    println!(
        "gossip contract holds: {} grid points converged, zero loss-free false \
         positives, zero post-convergence failover timeouts",
        points.len()
    );
}
