//! Ablation: routing substrate — P-Grid trie (the paper's layer) vs a
//! Chord ring.
//!
//! The paper's posting-level results are substrate-independent by design
//! (Section 4 analyzes postings, not hops). This run verifies that claim
//! empirically — identical posting counts on both overlays — and reports
//! what *does* differ: routing hops per message.

use hdk_bench::report::{fnum, Table};
use hdk_bench::{figures, runner, ExperimentProfile};
use hdk_core::{HdkNetwork, OverlayKind};
use hdk_corpus::{partition_documents, CollectionGenerator};
use hdk_p2p::MsgKind;

fn main() {
    let profile = ExperimentProfile::from_args();
    let docs = profile.docs_per_peer * 8;
    let collection = CollectionGenerator::new(profile.generator_config(docs)).generate();
    let partitions = partition_documents(docs, 8, profile.seed);
    let (central, log) = figures::centralized_and_log(&profile, &collection);

    let mut t = Table::new(
        "ablate_overlay",
        &[
            "overlay",
            "stored_per_peer",
            "retr_per_query",
            "overlap_top20",
            "avg_hops_insert",
            "avg_hops_lookup",
        ],
    );
    for (name, overlay) in [("pgrid", OverlayKind::PGrid), ("chord", OverlayKind::Chord)] {
        let net = HdkNetwork::build(
            &collection,
            &partitions,
            profile.hdk_config(profile.dfmax_values[0]),
            overlay,
        );
        let m = runner::measure_system(&net.query_service(), &central, &log);
        let s = net.snapshot();
        let ins = s.kind(MsgKind::IndexInsert);
        let look = s.kind(MsgKind::QueryLookup);
        t.row(&[
            name.to_owned(),
            fnum(m.stored_per_peer),
            fnum(m.retrieval_per_query),
            fnum(m.overlap_top20),
            fnum(ins.hops as f64 / ins.messages.max(1) as f64),
            fnum(look.hops as f64 / look.messages.max(1) as f64),
        ]);
        eprintln!("[ablate_overlay] {name} done");
    }
    println!("Ablation — overlay substrate (fixed {docs}-doc collection, 8 peers)\n");
    t.emit();
}
