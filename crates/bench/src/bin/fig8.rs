//! Figure 8 — estimated total generated traffic (indexing monthly plus
//! 1.5e6 queries/month), extrapolated to 1e9 documents.
//!
//! Runs a reduced growth sweep to *measure* the model coefficients
//! (postings per document for ST/HDK, per-query retrieval volumes), then
//! evaluates the analytic model of `hdk_model::traffic` — exactly the
//! paper's procedure, which extrapolates from its measured prototype runs.

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let mut profile = ExperimentProfile::from_args();
    // The calibration needs only the largest point plus one smaller one
    // (to confirm the ST slope); trim the sweep accordingly.
    if profile.peers_sweep.len() > 2 {
        let last = *profile.peers_sweep.last().unwrap();
        let first = profile.peers_sweep[0];
        profile.peers_sweep = vec![first, last];
    }
    let points = run_growth_sweep(&profile);
    println!("Figure 8 — estimated total generated traffic (postings/month)\n");
    let (table, model) = figures::fig8(&points, 1.5e6);
    table.emit();
    println!("calibrated coefficients (measured on this run):");
    println!(
        "  ST postings/doc            = {:.1} (paper: ~130)",
        model.st_postings_per_doc
    );
    println!(
        "  HDK postings/doc           = {:.1} (paper: ~5290)",
        model.hdk_postings_per_doc
    );
    println!(
        "  ST retrieval/query/doc     = {:.5}",
        model.st_retrieval_per_query_per_doc
    );
    println!(
        "  HDK retrieval/query        = {:.1} (bounded by nk*DFmax)",
        model.hdk_retrieval_per_query
    );
    println!(
        "  crossover (HDK wins above) = {:.0} documents",
        model.crossover_docs()
    );
    println!("\npaper reference points: ratio ~20 at 653,546 docs; ~42 at 1e9 docs");
}
