//! Restart-recovery study: kill peers' in-memory state, recover from the
//! per-stripe segment logs plus one repair sweep, and verify the result is
//! bit-identical to a never-restarted build.
//!
//! Two scenarios per sweep point (first `DFmax` value only):
//!
//! * **graceful** — tiered build under a 64 KiB hot budget, `sync`, then
//!   *every* peer restarts at once: log replay alone must reproduce the
//!   index (R = 1, no replica to lean on) and the closing repair sweep
//!   must find nothing to do.
//! * **crash** — R = 2 tiered build, no sync, one peer restarts: its hot
//!   copies are gone, the replay recovers what overflow-sealing had
//!   persisted, and the repair sweep restores the rest from replicas.
//!
//! Every scenario asserts convergence internally (index counts and top-k
//! f64 score bits against an in-memory reference build); the emitted
//! table reports the recovery volumes. CI's bench-smoke job runs
//! `--peers 4 --docs-per-peer 150 --queries 30` as a regression gate.

use hdk_bench::{ExperimentProfile, Table};
use hdk_core::{HdkConfig, HdkNetwork, StoreConfig};
use hdk_corpus::{partition_documents, Collection, CollectionGenerator, QueryLog};
use hdk_p2p::PeerId;

const HOT_BYTES: u64 = 1 << 16;

fn digests(network: &HdkNetwork, log: &QueryLog) -> Vec<Vec<(u32, u64)>> {
    log.queries
        .iter()
        .map(|q| {
            network
                .query(PeerId(0), &q.terms, 20)
                .results
                .iter()
                .map(|r| (r.doc.0, r.score.to_bits()))
                .collect()
        })
        .collect()
}

fn reference(c: &Collection, parts: &[Vec<hdk_corpus::DocId>], config: &HdkConfig) -> HdkNetwork {
    let config = HdkConfig {
        store: StoreConfig::Memory,
        ..config.clone()
    };
    HdkNetwork::build(c, parts, config, hdk_core::OverlayKind::PGrid)
}

fn main() {
    let profile = ExperimentProfile::from_args();
    let dfmax = profile.dfmax_values[0];
    let full = CollectionGenerator::new(profile.generator_config(profile.max_docs())).generate();
    let mut table = Table::new(
        "restart_study",
        &[
            "peers",
            "scenario",
            "frames",
            "replayed_B",
            "discarded",
            "lost_copies",
            "repaired",
            "sealed_B",
        ],
    );

    for &peers in &profile.peers_sweep {
        let docs = peers * profile.docs_per_peer;
        let c = full.prefix(docs);
        let parts = partition_documents(docs, peers, profile.seed ^ peers as u64);
        let log = QueryLog::generate(&c, &profile.querylog_config());

        // Graceful: sync, restart everyone, recover from logs alone.
        let config = HdkConfig {
            store: StoreConfig::segment(HOT_BYTES),
            ..profile.hdk_config(dfmax)
        };
        let baseline = reference(&c, &parts, &config);
        let expected = digests(&baseline, &log);
        let mut tiered = HdkNetwork::build(&c, &parts, config.clone(), profile.overlay);
        assert!(
            tiered.index().resident_posting_bytes() <= HOT_BYTES,
            "memory budget violated before restart"
        );
        tiered.sync_storage();
        let everyone: Vec<PeerId> = tiered.peers().iter().map(|p| p.id).collect();
        let (recovery, repair) = tiered.restart_peers(&everyone);
        assert_eq!(recovery.copies_lost, 0, "synced logs recover every copy");
        assert_eq!(repair.copies, 0, "graceful recovery left a gap");
        assert_eq!(
            tiered.index().index_counts(),
            baseline.index().index_counts()
        );
        assert_eq!(
            digests(&tiered, &log),
            expected,
            "graceful restart diverged"
        );
        table.row(&[
            peers.to_string(),
            "graceful".to_string(),
            recovery.frames_replayed.to_string(),
            recovery.bytes_replayed.to_string(),
            recovery.frames_discarded.to_string(),
            recovery.copies_lost.to_string(),
            repair.copies.to_string(),
            tiered.index().sealed_segment_bytes().to_string(),
        ]);

        // Crash: R = 2, no sync — one peer loses its hot state and the
        // repair sweep restores it from the surviving replicas.
        let config = HdkConfig {
            replication: 2,
            store: StoreConfig::segment(HOT_BYTES),
            ..profile.hdk_config(dfmax)
        };
        let baseline = reference(&c, &parts, &config);
        let expected = digests(&baseline, &log);
        let mut tiered = HdkNetwork::build(&c, &parts, config, profile.overlay);
        let victim = tiered.peers()[0].id;
        let (recovery, repair) = tiered.restart_peers(&[victim]);
        assert_eq!(recovery.keys_lost, 0, "R=2 crash-restart lost content");
        assert_eq!(
            repair.copies, recovery.copies_lost,
            "one repaired copy per lost copy"
        );
        assert_eq!(
            tiered.index().index_counts(),
            baseline.index().index_counts()
        );
        assert_eq!(digests(&tiered, &log), expected, "crash restart diverged");
        table.row(&[
            peers.to_string(),
            "crash".to_string(),
            recovery.frames_replayed.to_string(),
            recovery.bytes_replayed.to_string(),
            recovery.frames_discarded.to_string(),
            recovery.copies_lost.to_string(),
            repair.copies.to_string(),
            tiered.index().sealed_segment_bytes().to_string(),
        ]);
        eprintln!(
            "[restart_study] peers={peers} docs={docs} dfmax={dfmax}: both scenarios bit-identical"
        );
    }
    table.emit();
}
