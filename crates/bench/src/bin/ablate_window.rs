//! Ablation: proximity-window size `w`.
//!
//! Section 3.1 motivates proximity filtering as the lever that keeps the
//! key vocabulary manageable; Theorem 3 predicts the index growing with
//! `C(w-1, s-1)`. This sweep varies `w` at a fixed collection and reports
//! key counts, index size, indexing traffic and retrieval quality.

use hdk_bench::report::{fnum, Table};
use hdk_bench::{figures, runner, ExperimentProfile};
use hdk_core::{HdkNetwork, OverlayKind};
use hdk_corpus::{partition_documents, CollectionGenerator};

fn main() {
    let profile = ExperimentProfile::from_args();
    let docs = (profile.docs_per_peer * 4).min(2_000);
    let collection = CollectionGenerator::new(profile.generator_config(docs)).generate();
    let partitions = partition_documents(docs, 4, profile.seed);
    let (central, log) = figures::centralized_and_log(&profile, &collection);

    let mut t = Table::new(
        "ablate_window",
        &[
            "w",
            "keys_total",
            "keys_size2",
            "keys_size3",
            "stored_per_peer",
            "inserted_per_peer",
            "overlap_top20",
        ],
    );
    for w in [5, 10, 20, 40] {
        let mut config = profile.hdk_config(profile.dfmax_values[0]);
        config.window = w;
        let net = HdkNetwork::build(&collection, &partitions, config, OverlayKind::PGrid);
        let m = runner::measure_system(&net.query_service(), &central, &log);
        let counts = net.index().index_counts();
        t.row(&[
            w.to_string(),
            counts.total_keys().to_string(),
            (counts.hdk_keys[1] + counts.ndk_keys[1]).to_string(),
            (counts.hdk_keys[2] + counts.ndk_keys[2]).to_string(),
            fnum(m.stored_per_peer),
            fnum(m.inserted_per_peer),
            fnum(m.overlap_top20),
        ]);
        eprintln!("[ablate_window] w={w} done");
    }
    println!("Ablation — proximity window w (fixed {docs}-doc collection)\n");
    t.emit();
}
