//! Table 2 — experiment parameters (this run vs the paper).

use hdk_bench::{figures, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    println!("Table 2 — parameters used in experiments\n");
    figures::table2(&profile).emit();
}
