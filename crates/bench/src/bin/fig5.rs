//! Figure 5 of the paper — see `hdk_bench::figures::fig5`.

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    let points = run_growth_sweep(&profile);
    println!("{}\n", TITLE);
    figures::fig5(&points).emit();
}

const TITLE: &str = "Figure 5 — ratio between inserted IS and D";
