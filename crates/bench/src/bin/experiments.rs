//! Runs the complete evaluation: one growth sweep feeding every figure,
//! plus both tables — the full Section 5 of the paper in one command.
//!
//! ```text
//! cargo run -p hdk-bench --release --bin experiments
//! cargo run -p hdk-bench --release --bin experiments -- --scale 4
//! ```

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();

    println!("Table 1 — collection statistics\n");
    figures::table1(&profile).emit();
    println!("Table 2 — parameters used in experiments\n");
    figures::table2(&profile).emit();

    let points = run_growth_sweep(&profile);

    println!("Figure 3 — stored postings per peer (index size)\n");
    figures::fig3(&points).emit();
    println!("Figure 4 — inserted postings per peer (indexing costs)\n");
    figures::fig4(&points).emit();
    println!("Figure 5 — ratio between inserted IS and D\n");
    figures::fig5(&points).emit();
    println!("Figure 6 — number of retrieved postings per query\n");
    figures::fig6(&points).emit();
    println!("Figure 7 — top-20 overlap with BM25 relevance scheme [%]\n");
    figures::fig7(&points).emit();

    println!("Figure 8 — estimated total generated traffic (postings/month)\n");
    let (table, model) = figures::fig8(&points, 1.5e6);
    table.emit();
    println!(
        "traffic ratio ST/HDK at 653,546 docs (paper: ~20): {:.1}",
        model.ratio(653_546.0)
    );
    println!(
        "traffic ratio ST/HDK at 1e9 docs (paper: ~42): {:.1}",
        model.ratio(1e9)
    );
}
