//! Figure 4 of the paper — see `hdk_bench::figures::fig4`.

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    let points = run_growth_sweep(&profile);
    println!("{}\n", TITLE);
    figures::fig4(&points).emit();
}

const TITLE: &str = "Figure 4 — inserted postings per peer (indexing costs)";
