//! Table 1 — collection statistics (synthetic Wikipedia substitute).

use hdk_bench::{figures, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    println!("Table 1 — collection statistics\n");
    figures::table1(&profile).emit();
}
