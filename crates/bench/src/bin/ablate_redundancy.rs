//! Ablation: redundancy filtering (Definition 5).
//!
//! Compares three generator variants at a small fixed collection:
//!
//! * `intrinsic` — the paper's practical generator (extend NDKs only),
//! * `exact` — Definition 5 enforced verbatim (all sub-keys NDK),
//! * `no-filter` — index *every* discriminative key; the configuration
//!   redundancy filtering exists to avoid (key-count explosion).

use hdk_bench::report::{fnum, Table};
use hdk_bench::{figures, runner, ExperimentProfile};
use hdk_core::{HdkConfig, HdkNetwork, OverlayKind};
use hdk_corpus::{partition_documents, CollectionGenerator};

fn main() {
    let profile = ExperimentProfile::from_args();
    // Deliberately small: the no-filter variant is exponential in spirit.
    let docs = profile.docs_per_peer.min(500) * 2;
    let collection = CollectionGenerator::new(profile.generator_config(docs)).generate();
    let partitions = partition_documents(docs, 2, profile.seed);
    let (central, log) = figures::centralized_and_log(&profile, &collection);
    let base = profile.hdk_config(profile.dfmax_values[0]);

    let variants: [(&str, HdkConfig); 3] = [
        ("intrinsic (paper)", base.clone()),
        (
            "exact Definition 5",
            HdkConfig {
                exact_intrinsic: true,
                ..base.clone()
            },
        ),
        (
            "no redundancy filter",
            HdkConfig {
                redundancy_filtering: false,
                replication: 1,
                ..base
            },
        ),
    ];

    let mut t = Table::new(
        "ablate_redundancy",
        &[
            "variant",
            "keys_total",
            "keys_size2",
            "keys_size3",
            "inserted_per_peer",
            "overlap_top20",
            "retr_per_query",
        ],
    );
    for (name, config) in variants {
        let net = HdkNetwork::build(&collection, &partitions, config, OverlayKind::PGrid);
        let m = runner::measure_system(&net.query_service(), &central, &log);
        let counts = net.index().index_counts();
        t.row(&[
            name.to_owned(),
            counts.total_keys().to_string(),
            (counts.hdk_keys[1] + counts.ndk_keys[1]).to_string(),
            (counts.hdk_keys[2] + counts.ndk_keys[2]).to_string(),
            fnum(m.inserted_per_peer),
            fnum(m.overlap_top20),
            fnum(m.retrieval_per_query),
        ]);
        eprintln!("[ablate_redundancy] {name} done");
    }
    println!("Ablation — redundancy filtering (fixed {docs}-doc collection)\n");
    t.emit();
}
