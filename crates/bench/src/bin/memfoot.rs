//! Memory-footprint report: resident posting-storage bytes per peer,
//! compressed blocks vs the decoded `Vec<Posting>` baseline, plus the
//! hot/on-disk split when the tiered segment store is selected
//! (`HDK_STORE=segment[:<hot bytes>]`).
//!
//! One table per sweep point and `DFmax`. CI's bench-smoke job runs
//! `--peers 4 --docs-per-peer 150 --queries 0` as a fast regression check;
//! defaults reproduce the full growth sweep. Under a memory-budgeted
//! tiered build the run *asserts* the budget: resident bytes must stay
//! under the configured hot-tier limit, with the remainder sealed to disk.

use hdk_bench::memory::MemoryFootprint;
use hdk_bench::ExperimentProfile;
use hdk_core::{HdkNetwork, StoreConfig};
use hdk_corpus::{partition_documents, CollectionGenerator};

fn main() {
    let profile = ExperimentProfile::from_args();
    let full = CollectionGenerator::new(profile.generator_config(profile.max_docs())).generate();
    for &peers in &profile.peers_sweep {
        let docs = peers * profile.docs_per_peer;
        let collection = full.prefix(docs);
        let partitions = partition_documents(docs, peers, profile.seed ^ peers as u64);
        for &dfmax in &profile.dfmax_values {
            let config = profile.hdk_config(dfmax);
            let store = config.store.clone();
            // The compression bound is codec-dependent: gv4 spends one tag
            // byte per 4 values, which on this corpus's mostly-1-byte gaps
            // is ~25% overhead over LEB128 (mixed-width blocks amortize it
            // to parity — see BENCH_codec.json).
            let min_improvement = match config.codec {
                hdk_ir::Codec::Leb128 => 3.0,
                hdk_ir::Codec::Gv4 => 2.3,
            };
            let network = HdkNetwork::build(&collection, &partitions, config, profile.overlay);
            let footprint = MemoryFootprint::measure(&network);
            eprintln!(
                "[memfoot] peers={peers} docs={docs} dfmax={dfmax}: resident {} B + sealed {} B vs decoded {} B ({:.2}x)",
                footprint.resident_total(),
                footprint.sealed_total(),
                footprint.baseline_total(),
                footprint.improvement()
            );
            footprint
                .table(&format!("memfoot_p{peers}_df{dfmax}"))
                .emit();
            assert!(
                footprint.improvement() >= min_improvement,
                "resident storage regression: only {:.2}x better than decoded baseline (bound {min_improvement}x)",
                footprint.improvement()
            );
            match store {
                StoreConfig::Memory => assert_eq!(
                    footprint.sealed_total(),
                    0,
                    "the in-memory store sealed frames to disk?"
                ),
                StoreConfig::Segment { hot_bytes, .. } => assert!(
                    footprint.resident_total() <= hot_bytes,
                    "memory budget violated: {} resident bytes > {hot_bytes}",
                    footprint.resident_total()
                ),
            }
        }
    }
}
