//! Figure 6 of the paper — see `hdk_bench::figures::fig6`.

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    let points = run_growth_sweep(&profile);
    println!("{}\n", TITLE);
    figures::fig6(&points).emit();
}

const TITLE: &str = "Figure 6 — number of retrieved postings per query";
