//! The simulated-network latency sweep: replay one build + query scenario
//! over LAN / WAN / lossy-WAN `SimNet` models and tabulate per-kind
//! delivery latencies, retransmissions and the virtual makespan.
//!
//! ```text
//! cargo run -p hdk-bench --release --bin latency_sweep [--json] [peers docs queries skew]
//! ```
//!
//! `--json` emits the sweep as a single JSON document on stdout instead of
//! the aligned table. `skew` (default 0) Zipf-weights the query replay via
//! the corpus crate's shared sampler.

use hdk_bench::latency::{latency_sweep_json, print_latency_sweep, run_latency_sweep};

fn main() {
    let mut json = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            positional.push(arg);
        }
    }
    let num = |i: usize, default: usize| -> usize {
        positional
            .get(i)
            .map(|a| a.parse().expect("numeric args: peers docs queries"))
            .unwrap_or(default)
    };
    let peers = num(0, 8);
    let docs = num(1, 600);
    let queries = num(2, 60);
    let skew: f64 = positional
        .get(3)
        .map(|a| a.parse().expect("skew is a number"))
        .unwrap_or(0.0);
    eprintln!("[latency] peers={peers} docs={docs} queries={queries} skew={skew}");
    let points = run_latency_sweep(peers, docs, queries, skew);
    if json {
        println!("{}", latency_sweep_json(&points));
    } else {
        print_latency_sweep(&points);
    }
}
