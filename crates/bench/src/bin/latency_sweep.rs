//! The simulated-network latency sweep: replay one build + query scenario
//! over LAN / WAN / lossy-WAN `SimNet` models and tabulate per-kind
//! delivery latencies, retransmissions and the virtual makespan.
//!
//! ```text
//! cargo run -p hdk-bench --release --bin latency_sweep [peers docs queries]
//! ```

use hdk_bench::latency::{print_latency_sweep, run_latency_sweep};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args: peers docs queries"))
        .collect();
    let peers = args.first().copied().unwrap_or(8);
    let docs = args.get(1).copied().unwrap_or(600);
    let queries = args.get(2).copied().unwrap_or(60);
    eprintln!("[latency] peers={peers} docs={docs} queries={queries}");
    let points = run_latency_sweep(peers, docs, queries);
    print_latency_sweep(&points);
}
