//! The read-scaling study: replica load spreading, popularity-driven
//! hot-key replication and the TTL'd query cache under a Zipf-skewed
//! query stream — measured over `R ∈ {1,2,3}` × `s ∈ {0, 0.8, 1.2}`, with
//! the three read-scaling invariants asserted by the run itself (spread
//! `max ≤ 1.3 × mean` at `R=3, s=1.2`; ≥ 5× head lookup-message drop
//! with the warm cache; hot promotion unloads the hottest peer).
//!
//! ```text
//! cargo run -p hdk-bench --release --bin read_scaling [peers docs queries samples]
//! ```
//!
//! Emits the machine-readable artifact `BENCH_read_scaling.json` in the
//! working directory alongside the stdout tables.

use hdk_bench::read_scaling::{print_read_scaling, read_scaling_json, run_read_scaling};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args: peers docs queries samples"))
        .collect();
    let peers = args.first().copied().unwrap_or(8);
    let docs = args.get(1).copied().unwrap_or(240);
    let queries = args.get(2).copied().unwrap_or(24);
    let samples = args.get(3).copied().unwrap_or(400);
    eprintln!("[read_scaling] peers={peers} docs={docs} queries={queries} samples={samples}");
    let report = run_read_scaling(peers, docs, queries, samples);
    print_read_scaling(&report);
    let json = read_scaling_json(&report);
    let path = "BENCH_read_scaling.json";
    match std::fs::write(path, format!("{json}\n")) {
        Ok(()) => eprintln!("[read_scaling] wrote {path}"),
        Err(e) => eprintln!("note: could not write {path}: {e}"),
    }
}
