//! Section 4 numbers — Zipf fit, Theorems 1–3, and the Section 4.2
//! retrieval-cost formulas, evaluated on the generated collection.
//!
//! Reproduces the paper's worked example: "the maximal estimated value for
//! IS2/D is 12.16 (a1 = 1.5 is fitted from true frequency distribution,
//! and Pf,1 = 0.8) and the estimated value for IS3/D is 11.35 (a2 = 0.9
//! and Pf,2 = 0.257)".

use hdk_bench::{report::Table, ExperimentProfile};
use hdk_core::window_keys::candidate_postings;
use hdk_core::Key;
use hdk_corpus::{CollectionGenerator, FrequencyStats};
use hdk_model::{
    expected_keys_for_avg_size, fit_rank_frequency, index_size_ratio, keys_for_query, p_frequent,
    p_very_frequent, retrieval_traffic_bound, FitOptions,
};
use hdk_text::TermId;
use std::collections::HashSet;

/// Fits the Zipf skew of the 2-term-key frequency distribution (the
/// paper's `a2`, fitted "from true frequency distribution" of `K2`): pair
/// occurrences are counted over windows of `w` on a document sample, their
/// collection frequencies ranked, and the power law fitted as for terms.
fn fit_pair_skew(
    collection: &hdk_corpus::Collection,
    w: usize,
    sample_docs: usize,
) -> hdk_model::ZipfFit {
    let all_terms: HashSet<TermId> = (0..collection.vocab().len() as u32).map(TermId).collect();
    let all_singles: HashSet<Key> = all_terms.iter().map(|&t| Key::single(t)).collect();
    let pairs = candidate_postings(
        collection.iter().take(sample_docs),
        w,
        2,
        &all_terms,
        &all_singles,
        false,
    );
    let mut freqs: Vec<u64> = pairs
        .values()
        .map(|pl| pl.postings().iter().map(|p| u64::from(p.tf)).sum())
        .collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let rf: Vec<(usize, u64)> = freqs
        .into_iter()
        .enumerate()
        .map(|(i, f)| (i + 1, f))
        .collect();
    fit_rank_frequency(&rf, FitOptions::until_hapax(&rf))
}

fn main() {
    let profile = ExperimentProfile::from_args();
    let collection =
        CollectionGenerator::new(profile.generator_config(profile.max_docs())).generate();
    let stats = FrequencyStats::compute(&collection);
    let rf = stats.rank_frequency();
    let d = stats.sample_size() as f64;

    println!("Section 4.1 — Zipf fit and occurrence probabilities\n");
    let fit_full = fit_rank_frequency(&rf, FitOptions::default());
    let fit_hapax = fit_rank_frequency(&rf, FitOptions::until_hapax(&rf));
    let mut t = Table::new(
        "theory_zipf_fit",
        &["fit", "skew_a", "scale_C", "r2", "points"],
    );
    t.row(&[
        "all ranks".to_owned(),
        format!("{:.3}", fit_full.skew),
        format!("{:.1}", fit_full.scale),
        format!("{:.4}", fit_full.r_squared),
        fit_full.points.to_string(),
    ]);
    t.row(&[
        "to hapax T' (as in proofs)".to_owned(),
        format!("{:.3}", fit_hapax.skew),
        format!("{:.1}", fit_hapax.scale),
        format!("{:.4}", fit_hapax.r_squared),
        fit_hapax.points.to_string(),
    ]);
    t.emit();

    // Thresholds: Fr = DFmax (Corollary 1 makes rare keys discriminative),
    // Ff from the profile. Theorems need a > 1; use the hapax-range fit
    // when it qualifies, else the full fit, else the paper's 1.5.
    let a = [fit_hapax.skew, fit_full.skew, 1.5]
        .into_iter()
        .find(|&a| a > 1.01)
        .expect("1.5 qualifies");
    let ff = profile.ff as f64;
    let fr = f64::from(profile.dfmax_values[0]);
    let scale = fit_hapax.scale.max(ff + 1.0);
    println!("with a = {a:.3}, Fr = {fr}, Ff = {ff}:\n");
    let pvf = p_very_frequent(ff, scale, a);
    let pf1 = p_frequent(fr, ff, a);
    println!(
        "  Theorem 1: P_vf = {pvf:.4}   (grows with collection size; these terms are dropped)"
    );
    println!("  Theorem 2: P_f,1 = {pf1:.4}  (constant in collection size; paper example: 0.8)");

    println!(
        "\nTheorem 3 — index-size bounds IS_s/D (w = {}):\n",
        profile.window
    );
    let mut t3 = Table::new(
        "theory_theorem3",
        &["s", "P_f_used", "IS_s/D_bound", "IS_s_bound_postings"],
    );
    // Paper example values alongside this collection's.
    t3.row(&[
        "2 (paper: Pf=0.8 -> 12.16)".to_owned(),
        format!("{pf1:.4}"),
        format!("{:.3}", index_size_ratio(pf1, profile.window, 2)),
        format!("{:.3e}", index_size_ratio(pf1, profile.window, 2) * d),
    ]);
    // For size 3 the paper fits a separate skew a2 on 2-term-key
    // frequencies (a2 = 0.9 -> Pf,2 = 0.257). We measure the K2
    // distribution on a document sample the same way.
    t3.row(&[
        "3 (paper: Pf,2=0.257 -> 11.35)".to_owned(),
        "0.257".to_owned(),
        format!("{:.3}", index_size_ratio(0.257, profile.window, 3)),
        format!("{:.3e}", index_size_ratio(0.257, profile.window, 3) * d),
    ]);
    let pair_fit = fit_pair_skew(&collection, profile.window, 400);
    // Theorem 2 needs a > 1; like the paper (whose a2 = 0.9 also falls
    // below 1, making the zipfian Pf,2 formula inapplicable verbatim),
    // fall back to the published Pf,2 when the fit is sub-unit.
    let pf2 = if pair_fit.skew > 1.01 {
        p_frequent(fr, ff, pair_fit.skew)
    } else {
        0.257
    };
    t3.row(&[
        format!(
            "3 (measured a2={:.3}, r2={:.2})",
            pair_fit.skew, pair_fit.r_squared
        ),
        format!("{pf2:.4}"),
        format!("{:.3}", index_size_ratio(pf2, profile.window, 3)),
        format!("{:.3e}", index_size_ratio(pf2, profile.window, 3) * d),
    ]);
    t3.emit();

    println!("Section 4.2 — retrieval cost\n");
    let mut t4 = Table::new("theory_retrieval_cost", &["|q|", "nk", "bound_nk_x_DFmax"]);
    let dfmax = profile.dfmax_values[0];
    for q in 1..=8 {
        t4.row(&[
            q.to_string(),
            keys_for_query(q, profile.smax).to_string(),
            retrieval_traffic_bound(q, profile.smax, dfmax).to_string(),
        ]);
    }
    t4.emit();
    println!(
        "average web query (paper: 2.3 terms): nk ~ {:.2} (paper: 3.92)",
        expected_keys_for_avg_size(2.3)
    );
}
