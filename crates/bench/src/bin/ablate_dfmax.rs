//! Ablation: the `DFmax` trade-off.
//!
//! Section 5: "There is obviously a trade-off between retrieval quality
//! and bandwidth consumption [...] an increased value of DFmax results in
//! an increased bandwidth consumption during retrieval, while on the
//! contrary, offers retrieval performance that better mimics centralized
//! engines." This sweep quantifies both sides at a fixed collection.

use hdk_bench::report::{fnum, Table};
use hdk_bench::{figures, runner, ExperimentProfile};
use hdk_core::{HdkNetwork, OverlayKind};
use hdk_corpus::{partition_documents, CollectionGenerator};

fn main() {
    let profile = ExperimentProfile::from_args();
    let docs = profile.docs_per_peer * 8;
    let collection = CollectionGenerator::new(profile.generator_config(docs)).generate();
    let partitions = partition_documents(docs, 8, profile.seed);
    let (central, log) = figures::centralized_and_log(&profile, &collection);

    let base = profile.dfmax_values[0];
    let sweep: Vec<u32> = [base / 4, base / 2, base, base * 2, base * 4]
        .into_iter()
        .filter(|&d| d >= 2)
        .collect();

    let mut t = Table::new(
        "ablate_dfmax",
        &[
            "DFmax",
            "stored_per_peer",
            "inserted_per_peer",
            "retr_per_query",
            "lookups_per_query",
            "overlap_top20",
        ],
    );
    for dfmax in sweep {
        let net = HdkNetwork::build(
            &collection,
            &partitions,
            profile.hdk_config(dfmax),
            OverlayKind::PGrid,
        );
        let m = runner::measure_system(&net.query_service(), &central, &log);
        t.row(&[
            dfmax.to_string(),
            fnum(m.stored_per_peer),
            fnum(m.inserted_per_peer),
            fnum(m.retrieval_per_query),
            fnum(m.lookups_per_query),
            fnum(m.overlap_top20),
        ]);
        eprintln!("[ablate_dfmax] DFmax={dfmax} done");
    }
    println!("Ablation — DFmax trade-off (fixed {docs}-doc collection)\n");
    t.emit();
}
