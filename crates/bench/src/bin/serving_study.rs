//! The serving-tier study: spawns real `hdk-peer` processes on loopback
//! sockets, asserts the multi-process build bit-identical to the
//! in-process build, then drives a Zipf-skewed closed-loop HTTP load
//! through the front-end and reports wall-clock QPS and tail latency.
//!
//! ```text
//! cargo build --release                 # builds the hdk-peer binary too
//! cargo run -p hdk-bench --release --bin serving_study \
//!     [nprocs peers docs clients samples]
//! ```
//!
//! Emits the machine-readable artifact `BENCH_serving.json` in the
//! working directory alongside the stdout summary.

use hdk_bench::serving::{print_serving, run_serving_study, serving_json, ServingParams};
use std::path::PathBuf;

/// `hdk-peer` sits next to this binary in the target directory (both
/// profiles): `cargo run` puts bench bins and root-package bins in the
/// same `target/<profile>/` folder.
fn peer_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("target directory");
    let peer = dir.join(format!("hdk-peer{}", std::env::consts::EXE_SUFFIX));
    assert!(
        peer.is_file(),
        "{} not found — build it first: cargo build --release",
        peer.display()
    );
    peer
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| {
            a.parse()
                .expect("numeric args: nprocs peers docs clients samples")
        })
        .collect();
    let mut params = ServingParams::default();
    if let Some(&v) = args.first() {
        params.nprocs = v;
    }
    if let Some(&v) = args.get(1) {
        params.peers = v;
    }
    if let Some(&v) = args.get(2) {
        params.docs = v;
    }
    if let Some(&v) = args.get(3) {
        params.clients = v;
    }
    if let Some(&v) = args.get(4) {
        params.samples = v;
    }
    eprintln!(
        "[serving_study] nprocs={} peers={} docs={} clients={} samples={}",
        params.nprocs, params.peers, params.docs, params.clients, params.samples
    );
    let report = run_serving_study(&peer_binary(), params);
    print_serving(&report);
    assert_eq!(report.failed, 0, "loopback requests must not fail");
    assert_eq!(
        report.transport_errors, 0,
        "loopback transport must not tick errors"
    );
    let json = serving_json(&report);
    let path = "BENCH_serving.json";
    match std::fs::write(path, format!("{}\n", json.render())) {
        Ok(()) => eprintln!("[serving_study] wrote {path}"),
        Err(e) => eprintln!("note: could not write {path}: {e}"),
    }
}
