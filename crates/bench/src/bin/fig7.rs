//! Figure 7 of the paper — see `hdk_bench::figures::fig7`.

use hdk_bench::{figures, run_growth_sweep, ExperimentProfile};

fn main() {
    let profile = ExperimentProfile::from_args();
    let points = run_growth_sweep(&profile);
    println!("{}\n", TITLE);
    figures::fig7(&points).emit();
}

const TITLE: &str = "Figure 7 — top-20 overlap with BM25 relevance scheme [%]";
