//! The serving-tier study: real peer processes on loopback sockets, the
//! HTTP/JSON front-end on top, and a closed-loop load generator driving
//! a Zipf-skewed query stream through the whole stack.
//!
//! The run asserts the serving tier's load-bearing invariant before any
//! load flows — the multi-process build answers bit-identically (index
//! counts, top-k f64 score bits, traffic counts) to the in-process
//! build — then measures what the paper's simulator cannot: wall-clock
//! queries/second and tail latency through real sockets. Peers shut
//! down gracefully at the end and must exit 0.

use hdk_core::{
    spawn_http, BackendConfig, HdkConfig, HdkNetwork, OverlayKind, QueryService, WireRequest,
    WireResponse,
};
use hdk_corpus::{
    partition_documents, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::wire::{read_frame, write_frame};
use hdk_p2p::PeerId;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Study geometry and load shape.
#[derive(Debug, Clone)]
pub struct ServingParams {
    /// Peer processes hosting the DHT stripes.
    pub nprocs: usize,
    /// Logical peers across all processes.
    pub peers: usize,
    /// Documents in the synthetic collection.
    pub docs: usize,
    /// Vocabulary size of the synthetic collection.
    pub vocab: usize,
    /// The paper's `DFmax` indexing threshold.
    pub dfmax: u32,
    /// Concurrent closed-loop HTTP clients.
    pub clients: usize,
    /// Total requests across all clients.
    pub samples: usize,
    /// Zipf skew of the replayed query stream.
    pub skew: f64,
    /// Seed for the collection, partitions and replay schedule.
    pub seed: u64,
}

impl Default for ServingParams {
    fn default() -> Self {
        Self {
            nprocs: 3,
            peers: 8,
            docs: 400,
            vocab: 4_000,
            dfmax: 12,
            clients: 4,
            samples: 400,
            skew: 1.2,
            seed: 42,
        }
    }
}

/// What one study run measured.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// The geometry the run used.
    pub params: ServingParams,
    /// Total HDK keys in the (bit-identical) multi-process index.
    pub total_keys: u64,
    /// Requests answered 200 by the front-end.
    pub ok: u64,
    /// Requests answered anything else (must stay 0 on loopback).
    pub failed: u64,
    /// Closed-loop throughput over the wall-clock of the load phase.
    pub qps: f64,
    /// Latency quantiles over every successful request, microseconds.
    pub p50_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Transport errors the front-end counted (must stay 0 on loopback).
    pub transport_errors: u64,
}

/// Kills leftover peer processes when the study panics mid-run.
struct Fleet(Vec<Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_peer(peer_bin: &Path, params: &ServingParams, proc_index: usize) -> (Child, String) {
    let mut child = Command::new(peer_bin)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--nprocs",
            &params.nprocs.to_string(),
            "--proc",
            &proc_index.to_string(),
            "--peers",
            &params.peers.to_string(),
            "--dfmax",
            &params.dfmax.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", peer_bin.display()));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("unexpected peer banner {line:?}"))
        .to_string();
    (child, addr)
}

/// One request on a persistent (keep-alive) connection: returns the
/// status code and the body.
fn http_request(stream: &mut BufReader<TcpStream>, target: &str) -> (u16, String) {
    // One write per request: a fragmented write interacts with Nagle +
    // delayed ACK into ~40ms stalls, which would swamp the measurement.
    let request = format!("GET {target} HTTP/1.1\r\nHost: study\r\n\r\n");
    stream
        .get_mut()
        .write_all(request.as_bytes())
        .expect("send request");
    let mut line = String::new();
    stream.read_line(&mut line).expect("read status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {line:?}"));
    let mut content_length = 0usize;
    loop {
        line.clear();
        stream.read_line(&mut line).expect("read header");
        let header = line.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read body");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("connect HTTP front-end");
    stream.set_nodelay(true).expect("set nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    BufReader::new(stream)
}

fn assert_bit_identical(tcp: &QueryService, inproc: &QueryService, log: &QueryLog, peers: usize) {
    assert_eq!(
        tcp.index().index_counts(),
        inproc.index().index_counts(),
        "multi-process index counts diverge from in-process"
    );
    for (i, query) in log.queries.iter().take(16).enumerate() {
        let from = PeerId((i % peers) as u64);
        let remote = tcp.query(from, &query.terms, 10);
        let local = inproc.query(from, &query.terms, 10);
        assert_eq!(remote.lookups, local.lookups, "query {i}: lookups diverge");
        let remote_bits: Vec<(u32, u64)> = remote
            .results
            .iter()
            .map(|r| (r.doc.0, r.score.to_bits()))
            .collect();
        let local_bits: Vec<(u32, u64)> = local
            .results
            .iter()
            .map(|r| (r.doc.0, r.score.to_bits()))
            .collect();
        assert_eq!(remote_bits, local_bits, "query {i}: top-k bits diverge");
    }
    assert!(
        tcp.snapshot().same_counts(&inproc.snapshot()),
        "traffic counts diverge between the serving tier and in-process"
    );
}

/// Runs the full study: spawn peers from `peer_bin`, build twin indexes,
/// assert bit-identity, drive the closed-loop load, shut the fleet down
/// gracefully.
pub fn run_serving_study(peer_bin: &Path, params: ServingParams) -> ServingReport {
    let mut fleet = Fleet(Vec::new());
    let mut addrs = Vec::new();
    for i in 0..params.nprocs {
        let (child, addr) = spawn_peer(peer_bin, &params, i);
        fleet.0.push(child);
        addrs.push(addr);
    }

    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: params.docs,
        vocab_size: params.vocab,
        seed: params.seed,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), params.peers, params.seed);
    let config = HdkConfig {
        dfmax: params.dfmax,
        ..HdkConfig::default()
    };
    let tcp_net = HdkNetwork::build_with(
        &collection,
        &partitions,
        config.clone(),
        OverlayKind::PGrid,
        BackendConfig::Tcp {
            addrs: addrs.clone(),
        },
    );
    let inproc_net = HdkNetwork::build_with(
        &collection,
        &partitions,
        config,
        OverlayKind::PGrid,
        BackendConfig::InProc,
    );
    let tcp = tcp_net.query_service();
    let log = QueryLog::generate(&collection, &QueryLogConfig::default());
    assert!(!log.is_empty(), "degenerate collection: empty query log");
    assert_bit_identical(&tcp, &inproc_net.query_service(), &log, params.peers);
    let total_keys = tcp.index().index_counts().total_keys();

    // --- The closed-loop load phase. ---
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind front-end");
    let handle = spawn_http(listener, tcp.clone()).expect("spawn HTTP front-end");
    let http_addr = handle.addr();

    let schedule = log.zipf_replay(params.skew, params.samples, params.seed);
    let targets: Vec<String> = schedule
        .iter()
        .enumerate()
        .map(|(i, &pos)| {
            let q: Vec<String> = log.queries[pos]
                .terms
                .iter()
                .map(|t| t.0.to_string())
                .collect();
            format!("/query?q={}&k=10&peer={}", q.join(","), i % params.peers)
        })
        .collect();

    let next = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..params.clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut conn = connect(http_addr);
                    let mut sampled = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= targets.len() {
                            break;
                        }
                        let sent = Instant::now();
                        let (status, _) = http_request(&mut conn, &targets[i]);
                        if status == 200 {
                            sampled.push(sent.elapsed().as_nanos() as u64);
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    sampled
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("load worker panicked"))
            .collect()
    });
    let wall = started.elapsed();
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx] as f64 / 1_000.0
    };
    assert!(!latencies.is_empty(), "the load phase produced no samples");

    // Front-end health after the storm.
    let mut conn = connect(http_addr);
    let (status, body) = http_request(&mut conn, "/health");
    assert_eq!(status, 200, "post-load /health failed: {body}");
    assert!(body.contains("\"status\":\"ok\""), "unhealthy: {body}");
    let (status, metrics) = http_request(&mut conn, "/metrics");
    assert_eq!(status, 200, "post-load /metrics failed");
    assert!(
        metrics.contains("hdk_traffic_messages_total{kind=\"index_insert\"}"),
        "metrics lost the build counters"
    );
    handle.stop();

    // --- Graceful shutdown: ack frame, then exit status 0. ---
    for (child, addr) in fleet.0.iter_mut().zip(&addrs) {
        let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
        write_frame(&mut stream, &WireRequest::Shutdown.encode()).expect("send Shutdown");
        let reply = read_frame(&mut stream).expect("read shutdown ack");
        assert!(
            matches!(WireResponse::decode(&reply), Ok(WireResponse::ShuttingDown)),
            "peer at {addr} did not acknowledge shutdown"
        );
        let exit = child.wait().expect("reap peer");
        assert!(exit.success(), "graceful shutdown exited {exit}");
    }
    fleet.0.clear();

    ServingReport {
        total_keys,
        ok: ok.load(Ordering::Relaxed) as u64,
        failed: failed.load(Ordering::Relaxed) as u64,
        qps: latencies.len() as f64 / wall.as_secs_f64(),
        p50_us: quantile(0.5),
        p99_us: quantile(0.99),
        mean_us: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1_000.0,
        transport_errors: tcp.transport_errors(),
        params,
    }
}

/// The stdout table.
pub fn print_serving(report: &ServingReport) {
    let p = &report.params;
    println!(
        "serving tier: {} peer processes x {} logical peers, {} docs, DFmax={}",
        p.nprocs, p.peers, p.docs, p.dfmax
    );
    println!(
        "  bit-identical to in-process: yes ({} HDK keys)",
        report.total_keys
    );
    println!(
        "  {} clients x {} requests (zipf s={}): {:.0} q/s  p50 {:.0}us  p99 {:.0}us  mean {:.0}us",
        p.clients, p.samples, p.skew, report.qps, report.p50_us, report.p99_us, report.mean_us
    );
    println!(
        "  ok={} failed={} transport_errors={}",
        report.ok, report.failed, report.transport_errors
    );
}

/// The machine-readable artifact (`BENCH_serving.json`).
pub fn serving_json(report: &ServingReport) -> Json {
    let p = &report.params;
    Json::obj([
        (
            "params",
            Json::obj([
                ("nprocs", p.nprocs.into()),
                ("peers", p.peers.into()),
                ("docs", p.docs.into()),
                ("vocab", p.vocab.into()),
                ("dfmax", u64::from(p.dfmax).into()),
                ("clients", p.clients.into()),
                ("samples", p.samples.into()),
                ("skew", p.skew.into()),
                ("seed", p.seed.into()),
            ]),
        ),
        ("bit_identical_to_inproc", true.into()),
        ("total_keys", report.total_keys.into()),
        ("ok", report.ok.into()),
        ("failed", report.failed.into()),
        ("qps", report.qps.into()),
        ("p50_us", report.p50_us.into()),
        ("p99_us", report.p99_us.into()),
        ("mean_us", report.mean_us.into()),
        ("transport_errors", report.transport_errors.into()),
    ])
}
