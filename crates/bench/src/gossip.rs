//! The gossip membership study: what failure detection costs across the
//! `fanout × suspicion window` grid, with and without probe loss.
//!
//! Every grid point walks one crash episode end to end with the liveness
//! oracle switched off (`HdkConfig::gossip` with `fanout ≥ 1`):
//!
//! 1. **healthy** — a query batch against the intact network;
//! 2. **crash** — one peer fails; *nobody calls repair*;
//! 3. **detection window** — the same batch again: queries route by the
//!    stale per-peer views and pay failover timeouts at the corpse;
//! 4. **convergence** — gossip rounds run until every live view matches
//!    ground truth; the round that confirms the death in the last view
//!    fires the repair sweep itself;
//! 5. **post-convergence** — the batch once more: converged views route
//!    around the dead peer for free (zero new failover timeouts) and the
//!    answers are bit-identical to a never-failed reference.
//!
//! The study *asserts* the detection contract as it runs — zero false
//! positives under loss-free probing, bounded convergence under loss,
//! zero post-convergence failover timeouts — so the CI smoke run fails
//! loudly when the subsystem regresses.

use crate::json::Json;
use crate::report::Table;
use hdk_core::{HdkConfig, HdkNetwork, OverlayKind, QueryService};
use hdk_corpus::{
    partition_documents, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::{GossipConfig, MsgKind, PeerId};
use hdk_text::TermId;

/// Convergence budget per episode: suspicion window plus dissemination,
/// padded generously because lossy probes retry across rounds.
pub const ROUND_CAP: u32 = 64;

/// One `(fanout, suspicion_rounds, loss_prob)` episode's measurements.
#[derive(Debug, Clone)]
pub struct GossipPoint {
    /// Probe targets per peer per round.
    pub fanout: usize,
    /// Rounds an unrefuted suspicion survives before confirmation.
    pub suspicion_rounds: u32,
    /// Probe-loss probability (drawn from the gossip seed — identical on
    /// every backend).
    pub loss_prob: f64,
    /// Rounds from the crash until every live view matched ground truth.
    pub rounds_to_converge: u32,
    /// Gossip messages those rounds moved (delivered pings + acks).
    pub gossip_messages: u64,
    /// Digest bytes those rounds moved.
    pub gossip_bytes: u64,
    /// Probes that went unanswered during convergence — the corpse never
    /// acks, and under `loss_prob > 0` the loss draw swallows more.
    pub probes_failed: u64,
    /// Live peers transiently (and falsely) confirmed dead at any point
    /// during convergence — must be 0 when `loss_prob == 0`.
    pub false_positive_peak: usize,
    /// Copies the gossip-triggered repair sweep re-materialized.
    pub repair_copies: u64,
    /// Failover timeouts queries paid during the detection window.
    pub timeouts_detection: u64,
    /// Failover timeouts paid *after* convergence — must be 0.
    pub timeouts_post: u64,
    /// Post-convergence queries diverging from the never-failed
    /// reference — must be 0 (the triggered repair restored everything).
    pub diverged_post: usize,
}

type Digest = Vec<(u32, u64)>;

fn digests(service: &QueryService, from: PeerId, queries: &[Vec<TermId>]) -> Vec<Digest> {
    queries
        .iter()
        .map(|terms| {
            service
                .query(from, terms, 20)
                .results
                .iter()
                .map(|r| (r.doc.0, r.score.to_bits()))
                .collect()
        })
        .collect()
}

/// Runs the study: `docs` documents over `peers` peers, `queries` log
/// queries per phase, one crash per episode, over
/// `fanout ∈ {1, 2, 3} × suspicion ∈ {2, 3} × loss ∈ {0, 0.2}`.
///
/// # Panics
/// Panics when any grid point violates the detection contract (see the
/// module docs) — the study is its own smoke check.
pub fn run_gossip_study(peers: usize, docs: usize, queries: usize) -> Vec<GossipPoint> {
    assert!(peers >= 4, "the crash must leave a detectable majority");
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: docs,
        vocab_size: (docs * 12).max(2_000),
        avg_doc_len: 60,
        num_topics: (docs / 12).max(8),
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(docs, peers, 29);
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: queries,
            ..QueryLogConfig::default()
        },
    );
    let query_set: Vec<Vec<TermId>> = log.queries.iter().map(|q| q.terms.clone()).collect();
    let base = HdkConfig {
        ff: (docs as u64 * 20).max(2_000),
        dfmax: (docs as u32 / 10).max(10),
        replication: 2,
        ..HdkConfig::default()
    };
    let victim = PeerId(0);
    let survivor = PeerId(1);
    // Gossip never changes index content, so one oracle-driven reference
    // provides the expected digests for every grid point.
    let reference = HdkNetwork::build(&collection, &partitions, base.clone(), OverlayKind::PGrid);
    let expected = digests(&reference.query_service(), survivor, &query_set);

    let mut points = Vec::new();
    for fanout in [1usize, 2, 3] {
        for suspicion_rounds in [2u32, 3] {
            for loss_prob in [0.0f64, 0.2] {
                let config = HdkConfig {
                    gossip: GossipConfig {
                        fanout,
                        suspicion_rounds,
                        loss_prob,
                        seed: 0x6055,
                    },
                    ..base.clone()
                };
                let mut network =
                    HdkNetwork::build(&collection, &partitions, config, OverlayKind::PGrid);
                let healthy = digests(&network.query_service(), survivor, &query_set);
                assert_eq!(healthy, expected, "healthy network diverged");
                assert_eq!(network.snapshot().failover_timeouts, 0);

                let loss = network.fail_peers(vec![victim]);
                assert_eq!(loss.keys_lost, 0, "R=2 single crash lost content");
                let t0 = network.snapshot();
                let _stale = digests(&network.query_service(), survivor, &query_set);
                let t1 = network.snapshot();
                let timeouts_detection = t1.failover_timeouts - t0.failover_timeouts;
                assert!(
                    timeouts_detection > 0,
                    "fanout={fanout} w={suspicion_rounds}: stale views paid no timeouts — \
                     the detection window is vacuous"
                );

                let mut rounds = 0u32;
                let mut probes_failed = 0u64;
                let mut false_positive_peak = 0usize;
                let mut repair_copies = 0u64;
                while network.gossip_converged() != Some(true) {
                    assert!(
                        rounds < ROUND_CAP,
                        "fanout={fanout} w={suspicion_rounds} loss={loss_prob}: \
                         no convergence within {ROUND_CAP} rounds"
                    );
                    let out = network.gossip_round();
                    rounds += 1;
                    probes_failed += out.report.failed;
                    if let Some(r) = out.repair {
                        repair_copies += r.copies;
                    }
                    let fps = network.index().gossip_false_positives().unwrap().len();
                    false_positive_peak = false_positive_peak.max(fps);
                    if loss_prob == 0.0 {
                        assert_eq!(
                            fps, 0,
                            "loss-free probing falsely confirmed a live peer dead"
                        );
                    }
                }
                assert!(
                    repair_copies > 0,
                    "universal confirmation never fired the repair sweep"
                );
                let t2 = network.snapshot();
                let gossip_window = t2.since(&t1).kind(MsgKind::Gossip);

                let post = digests(&network.query_service(), survivor, &query_set);
                let t3 = network.snapshot();
                let timeouts_post = t3.failover_timeouts - t2.failover_timeouts;
                assert_eq!(
                    timeouts_post, 0,
                    "fanout={fanout} w={suspicion_rounds} loss={loss_prob}: \
                     converged views still paid failover timeouts"
                );
                let diverged_post = post.iter().zip(&expected).filter(|(g, w)| g != w).count();
                assert_eq!(
                    diverged_post, 0,
                    "post-convergence answers diverged from the never-failed reference"
                );

                points.push(GossipPoint {
                    fanout,
                    suspicion_rounds,
                    loss_prob,
                    rounds_to_converge: rounds,
                    gossip_messages: gossip_window.messages,
                    gossip_bytes: gossip_window.bytes,
                    probes_failed,
                    false_positive_peak,
                    repair_copies,
                    timeouts_detection,
                    timeouts_post,
                    diverged_post,
                });
            }
        }
    }
    points
}

/// Renders the study as an aligned table (and TSV).
pub fn print_gossip_study(points: &[GossipPoint]) {
    let mut table = Table::new(
        "gossip",
        &[
            "fanout", "window", "loss", "rounds", "msgs", "bytes", "lost", "fp_peak", "repair",
            "t_detect", "t_post", "bad_post",
        ],
    );
    for p in points {
        table.row(&[
            p.fanout.to_string(),
            p.suspicion_rounds.to_string(),
            format!("{:.2}", p.loss_prob),
            p.rounds_to_converge.to_string(),
            p.gossip_messages.to_string(),
            p.gossip_bytes.to_string(),
            p.probes_failed.to_string(),
            p.false_positive_peak.to_string(),
            p.repair_copies.to_string(),
            p.timeouts_detection.to_string(),
            p.timeouts_post.to_string(),
            p.diverged_post.to_string(),
        ]);
    }
    table.emit();
}

/// Renders the study as the `BENCH_gossip.json` artifact.
pub fn gossip_json(points: &[GossipPoint]) -> String {
    Json::obj([
        ("bench", "gossip".into()),
        ("round_cap", u64::from(ROUND_CAP).into()),
        (
            "grid",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("fanout", p.fanout.into()),
                    ("suspicion_rounds", u64::from(p.suspicion_rounds).into()),
                    ("loss_prob", p.loss_prob.into()),
                    ("rounds_to_converge", u64::from(p.rounds_to_converge).into()),
                    ("gossip_messages", p.gossip_messages.into()),
                    ("gossip_bytes", p.gossip_bytes.into()),
                    ("probes_failed", p.probes_failed.into()),
                    ("false_positive_peak", p.false_positive_peak.into()),
                    ("repair_copies", p.repair_copies.into()),
                    ("timeouts_detection", p.timeouts_detection.into()),
                    ("timeouts_post", p.timeouts_post.into()),
                    ("diverged_post", p.diverged_post.into()),
                ])
            })),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_asserts_its_own_contract() {
        // The run panics on any contract violation, so reaching the
        // shape checks below already certifies detection + repair.
        let points = run_gossip_study(6, 120, 8);
        assert_eq!(points.len(), 12);
        for p in &points {
            assert!(p.rounds_to_converge >= p.suspicion_rounds);
            assert!(p.rounds_to_converge <= ROUND_CAP);
            assert!(p.gossip_messages > 0);
            assert_eq!(p.timeouts_post, 0);
            assert_eq!(p.diverged_post, 0);
            // The corpse never acks, so probes fail even loss-free —
            // but loss-free probing never falsely kills anyone.
            assert!(p.probes_failed > 0);
            if p.loss_prob == 0.0 {
                assert_eq!(p.false_positive_peak, 0);
            }
        }
        // Loss can only stretch detection, never shorten it, and the
        // artifact renders to valid non-empty JSON.
        let json = gossip_json(&points);
        assert!(json.contains("\"bench\":\"gossip\""));
        assert!(json.contains("rounds_to_converge"));
    }
}
