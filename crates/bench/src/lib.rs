//! Experiment harness reproducing the evaluation of Podnar et al.
//! (ICDE 2007): every table and figure, plus the ablations listed in
//! `DESIGN.md`.
//!
//! Structure:
//!
//! * [`profile`] — the experiment configuration (scaled-down defaults plus
//!   CLI overrides; `--help` on any binary prints the knobs),
//! * [`report`] — aligned-TSV table output (stdout + `target/experiments/`),
//! * [`runner`] — the shared network-growth sweep that measures everything
//!   Figures 3–7 plot,
//! * [`memory`] — the resident posting-storage footprint report
//!   (compressed blocks vs the decoded baseline, hot vs sealed tiers),
//! * [`latency`] — the `SimNet` latency sweep (one scenario over
//!   LAN / WAN / lossy-WAN network models),
//! * [`availability`] — the replication/churn study (vary `R`, kill
//!   peers, measure content loss, repair traffic and degraded-query
//!   latency),
//! * [`gossip`] — the failure-detection study (sweep gossip fanout ×
//!   suspicion window × probe loss, crash a peer, measure convergence
//!   rounds, probe traffic and stale-view failover timeouts).
//!
//! Binaries (`cargo run -p hdk-bench --release --bin <name>`): `table1`,
//! `table2`, `fig3`–`fig8`, `theory`, `experiments` (all of the above in
//! one run), `memfoot`, `latency_sweep`, `availability`, `restart_study`
//! (segment-log crash-restart recovery, asserted bit-identical),
//! `serving_study` ([`serving`]: real peer processes + HTTP front-end
//! under closed-loop load, asserted bit-identical to in-process),
//! `gossip_study` ([`gossip`]: SWIM-style failure detection without the
//! liveness oracle, asserted against the detection contract),
//! `ablate_window`, `ablate_redundancy`, `ablate_dfmax`, `ablate_overlay`.

pub mod availability;
pub mod figures;
pub mod gossip;
pub mod json;
pub mod latency;
pub mod memory;
pub mod profile;
pub mod read_scaling;
pub mod report;
pub mod runner;
pub mod serving;

pub use availability::{print_availability_study, run_availability_study, AvailabilityPoint};
pub use json::Json;
pub use latency::{run_latency_sweep, LatencyPoint};
pub use profile::ExperimentProfile;
pub use read_scaling::{run_read_scaling, ReadScalingReport};
pub use report::Table;
pub use runner::{run_growth_sweep, PointMeasurement, SystemMeasurement};
pub use serving::{run_serving_study, ServingParams, ServingReport};
