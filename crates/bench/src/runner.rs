//! The shared network-growth sweep behind Figures 3–7.
//!
//! The paper "started the experiment with 4 peers, and added additional 4
//! peers at each new experimental run", each peer contributing a constant
//! number of documents. We reproduce that: one collection is generated at
//! the final size and every sweep point indexes a prefix of it, so curves
//! are comparable point-to-point. At every point three systems are built
//! over identical partitions and overlays — distributed single-term (ST)
//! and HDK at each configured `DFmax` — and measured for storage, indexing
//! traffic, retrieval traffic, and top-20 overlap against the centralized
//! BM25 engine.

use crate::profile::ExperimentProfile;
use hdk_core::{HdkNetwork, QueryService, SingleTermNetwork, MAX_KEY_SIZE};
use hdk_corpus::{partition_documents, CollectionGenerator, QueryLog};
use hdk_ir::{top_k_overlap, CentralizedEngine};
use hdk_p2p::PeerId;

/// Measurements of one system at one sweep point.
#[derive(Debug, Clone)]
pub struct SystemMeasurement {
    /// Mean stored postings per peer (Figure 3).
    pub stored_per_peer: f64,
    /// Mean inserted postings per peer (Figure 4).
    pub inserted_per_peer: f64,
    /// `IS_s / D` for s = 1..=MAX_KEY_SIZE (Figure 5; slot s-1).
    pub is_ratios: [f64; MAX_KEY_SIZE],
    /// `IS / D` — total inserted over sample size (Figure 5).
    pub is_ratio_total: f64,
    /// Inserted postings per document.
    pub postings_per_doc: f64,
    /// Mean postings retrieved per query (Figure 6).
    pub retrieval_per_query: f64,
    /// Mean key lookups per query (`nk`).
    pub lookups_per_query: f64,
    /// Mean per-level fan-out width: candidate keys the query planner
    /// enumerated at lattice level `s` (slot `s-1`), averaged over the
    /// query batch — the width the executor resolves in parallel.
    pub fanout_per_level: [f64; MAX_KEY_SIZE],
    /// Mean top-20 overlap with centralized BM25, percent (Figure 7).
    pub overlap_top20: f64,
    /// Queries evaluated.
    pub queries: usize,
}

/// All systems at one sweep point.
#[derive(Debug, Clone)]
pub struct PointMeasurement {
    /// Peers in the network.
    pub peers: usize,
    /// Documents indexed (`M`).
    pub docs: usize,
    /// Sample size (`D`).
    pub sample_size: u64,
    /// The ST baseline.
    pub st: SystemMeasurement,
    /// `(DFmax, measurement)` per configured threshold.
    pub hdk: Vec<(u32, SystemMeasurement)>,
}

/// Runs the full sweep. Progress goes to stderr; measurements are
/// returned for the figure binaries to tabulate.
pub fn run_growth_sweep(profile: &ExperimentProfile) -> Vec<PointMeasurement> {
    let full = CollectionGenerator::new(profile.generator_config(profile.max_docs())).generate();
    let mut points = Vec::with_capacity(profile.peers_sweep.len());
    for &peers in &profile.peers_sweep {
        let docs = peers * profile.docs_per_peer;
        let collection = full.prefix(docs);
        let partitions = partition_documents(docs, peers, profile.seed ^ peers as u64);
        let central = CentralizedEngine::build(&collection);
        let log = QueryLog::generate_filtered(&collection, &profile.querylog_config(), |terms| {
            central.count_hits(terms)
        });
        eprintln!(
            "[sweep] peers={peers} docs={docs} queries={} (avg {:.2} terms)",
            log.len(),
            log.avg_terms()
        );

        let st_net = SingleTermNetwork::build(&collection, &partitions, profile.overlay);
        let st = measure_system(&st_net.query_service(), &central, &log);
        eprintln!(
            "[sweep]   ST: stored/peer={:.0} retr/query={:.0}",
            st.stored_per_peer, st.retrieval_per_query
        );

        let mut hdk = Vec::with_capacity(profile.dfmax_values.len());
        for &dfmax in &profile.dfmax_values {
            let net = HdkNetwork::build(
                &collection,
                &partitions,
                profile.hdk_config(dfmax),
                profile.overlay,
            );
            let m = measure_system(&net.query_service(), &central, &log);
            eprintln!(
                "[sweep]   HDK(DFmax={dfmax}): stored/peer={:.0} retr/query={:.0} overlap={:.1}% \
                 fan-out/level={:?}",
                m.stored_per_peer,
                m.retrieval_per_query,
                m.overlap_top20,
                m.fanout_per_level
                    .iter()
                    .map(|w| (w * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            );
            hdk.push((dfmax, m));
        }
        points.push(PointMeasurement {
            peers,
            docs,
            sample_size: collection.stats().sample_size as u64,
            st,
            hdk,
        });
    }
    points
}

/// Builds the per-system measurement over the system's read-path handle:
/// build statistics plus a query batch (evaluated in parallel via
/// [`QueryService::query_batch_profiled`]; outcomes are identical to the
/// sequential loop and come back in log order, with each query's per-level
/// execution profile alongside).
pub fn measure_system(
    network: &QueryService,
    central: &CentralizedEngine,
    log: &QueryLog,
) -> SystemMeasurement {
    let report = network.build_report();
    let batch: Vec<(PeerId, &[hdk_text::TermId])> = log
        .queries
        .iter()
        .map(|q| {
            (
                PeerId(u64::from(q.id) % report.num_peers as u64),
                q.terms.as_slice(),
            )
        })
        .collect();
    let outcomes = network.query_batch_profiled(&batch, 20);
    let mut postings = 0u64;
    let mut lookups = 0u64;
    let mut overlap = 0.0f64;
    let mut fanout = [0u64; MAX_KEY_SIZE];
    for (q, (out, profile)) in log.queries.iter().zip(&outcomes) {
        let reference = central.search(&q.terms, 20);
        overlap += top_k_overlap(&out.results, &reference, 20);
        postings += out.postings_fetched;
        lookups += u64::from(out.lookups);
        for level in &profile.levels {
            fanout[level.level - 1] += u64::from(level.planned);
        }
    }
    let nq = log.len().max(1) as f64;
    let mut is_ratios = [0.0; MAX_KEY_SIZE];
    for (s, slot) in is_ratios.iter_mut().enumerate() {
        *slot = report.is_ratio(s + 1);
    }
    let mut fanout_per_level = [0.0; MAX_KEY_SIZE];
    for (slot, &total) in fanout_per_level.iter_mut().zip(&fanout) {
        *slot = total as f64 / nq;
    }
    SystemMeasurement {
        stored_per_peer: report.avg_stored_per_peer(),
        inserted_per_peer: report.avg_inserted_per_peer(),
        is_ratios,
        is_ratio_total: report.is_ratio_total(),
        postings_per_doc: report.postings_per_doc(),
        retrieval_per_query: postings as f64 / nq,
        lookups_per_query: lookups as f64 / nq,
        fanout_per_level,
        overlap_top20: if log.is_empty() { 0.0 } else { overlap / nq },
        queries: log.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end sweep validating the paper's headline
    /// orderings at toy scale. This is the harness's own integration test;
    /// the real figures run via the binaries.
    #[test]
    fn tiny_sweep_has_paper_shape() {
        let profile = ExperimentProfile {
            peers_sweep: vec![2, 4],
            docs_per_peer: 150,
            avg_doc_len: 50,
            vocab_size: 6_000,
            dfmax_values: vec![15],
            ff: 1_500,
            num_queries: 30,
            min_hits: 5,
            ..ExperimentProfile::default()
        };
        let points = run_growth_sweep(&profile);
        assert_eq!(points.len(), 2);
        for p in &points {
            let (_, hdk) = &p.hdk[0];
            // HDK stores more than ST (indexing cost)...
            assert!(
                hdk.stored_per_peer > p.st.stored_per_peer,
                "HDK {} <= ST {}",
                hdk.stored_per_peer,
                p.st.stored_per_peer
            );
            // ...and inserted >= stored for HDK (NDK truncation).
            assert!(hdk.inserted_per_peer >= hdk.stored_per_peer - 1e-9);
            // ST is exact BM25: overlap 100%.
            assert!(
                p.st.overlap_top20 > 99.9,
                "ST overlap {}",
                p.st.overlap_top20
            );
            // HDK overlap is meaningful.
            assert!(
                hdk.overlap_top20 > 20.0,
                "HDK overlap {}",
                hdk.overlap_top20
            );
            // IS1/D <= 1 (Section 4.1).
            assert!(hdk.is_ratios[0] <= 1.0 + 1e-9);
        }
        // ST retrieval traffic grows with the collection; HDK's stays
        // bounded by nk*DFmax per query (and thus grows much slower).
        let (st0, st1) = (
            points[0].st.retrieval_per_query,
            points[1].st.retrieval_per_query,
        );
        assert!(st1 > st0, "ST retrieval must grow: {st0} -> {st1}");
    }
}
