//! Table output: aligned text to stdout, TSV to `target/experiments/`.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple experiment-result table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a file-name-friendly `name` and column headers.
    pub fn new<S: Into<String>>(name: S, headers: &[&str]) -> Self {
        Self {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (any `Display` values).
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints to stdout and writes `target/experiments/<name>.tsv`.
    /// File-system errors are reported to stderr but never fatal (the
    /// stdout copy is the deliverable).
    pub fn emit(&self) {
        print!("{}", self.render());
        println!();
        if let Err(e) = self.write_tsv() {
            eprintln!("note: could not write TSV for {}: {e}", self.name);
        }
    }

    /// Writes the TSV file, returning its path.
    pub fn write_tsv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.tsv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(path)
    }
}

/// Formats a float compactly for tables (3 significant decimals, plain).
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e7 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("test", &["a", "longheader"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("longheader"));
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(1234.0), "1234");
        assert_eq!(fnum(2.5e9), "2.500e9");
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("unit_test_tsv", &["x", "y"]);
        t.row(&[1, 2]);
        let path = t.write_tsv().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\ty\n1\t2\n");
        let _ = std::fs::remove_file(path);
    }
}
