//! Minimal JSON emission for machine-readable bench artifacts.
//!
//! The workspace vendors its dependencies, so rather than pulling in a
//! serialization framework for two small reports this module hand-rolls
//! the subset of JSON the bench artifacts need: finite numbers, strings,
//! booleans, arrays and objects, rendered with stable key order so the
//! artifacts diff cleanly run over run.

use std::fmt::Write as _;

/// A JSON value. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::arr`], render with [`Json::render`].
#[derive(Debug, Clone)]
pub enum Json {
    /// A number. Must be finite — JSON has no NaN/Inf encoding.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keeping the given order.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// An array from any iterator of values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as compact JSON.
    ///
    /// # Panics
    /// Panics on non-finite numbers — bench metrics are always finite, and
    /// silently emitting `null` would corrupt downstream tooling.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
                // Integers render without a fractional part so counters
                // stay readable as counters.
                if *v == v.trunc() && v.abs() < 9e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj([
            ("name", "read_scaling".into()),
            ("points", Json::arr([Json::obj([("r", 3u64.into())])])),
            ("ok", true.into()),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"read_scaling","points":[{"r":3}],"ok":true}"#
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = Json::Num(f64::NAN).render();
    }
}
