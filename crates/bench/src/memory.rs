//! Memory-footprint report: resident posting-storage bytes per peer.
//!
//! The paper counts *postings* because they dominate both traffic and
//! peer-side storage; this report echoes Figure 3's per-peer volumes in
//! *bytes*, comparing what each peer actually keeps resident (the
//! compressed blocks plus `df` doc-sets) against what the same state would
//! occupy decoded (`Vec<Posting>` at 12 B/posting plus 4 B per tracked doc
//! id — the representation before the one-format-everywhere refactor).
//!
//! Under the tiered store the report also splits hot from cold: the
//! `sealed_B` column counts each peer's live sealed segment frames on
//! disk, so `resident_B + sealed_B` is the peer's full storage volume and
//! `resident_B` alone is what the hot-tier budget bounds.

use crate::report::{fnum, Table};
use hdk_core::{HdkNetwork, PeerStorage};

/// The measured footprint of one network.
#[derive(Debug, Clone)]
pub struct MemoryFootprint {
    /// Per-peer storage composition (exact encoded bytes).
    pub per_peer: Vec<PeerStorage>,
}

impl MemoryFootprint {
    /// Measures a built network.
    pub fn measure(network: &HdkNetwork) -> Self {
        Self {
            per_peer: network.index().storage_per_peer(),
        }
    }

    /// Total resident bytes across peers.
    pub fn resident_total(&self) -> u64 {
        self.per_peer.iter().map(PeerStorage::resident_bytes).sum()
    }

    /// Total sealed segment-frame bytes on disk across peers (0 on the
    /// in-memory store, where every entry stays hot).
    pub fn sealed_total(&self) -> u64 {
        self.per_peer.iter().map(|s| s.sealed_bytes).sum()
    }

    /// Total decoded-baseline bytes across peers.
    pub fn baseline_total(&self) -> u64 {
        self.per_peer
            .iter()
            .map(PeerStorage::decoded_baseline_bytes)
            .sum()
    }

    /// Aggregate improvement factor (baseline / resident).
    pub fn improvement(&self) -> f64 {
        self.baseline_total() as f64 / self.resident_total().max(1) as f64
    }

    /// Renders the per-peer table (one row per peer plus a total row).
    pub fn table(&self, name: &str) -> Table {
        let mut t = Table::new(
            name,
            &[
                "peer",
                "postings",
                "resident_B",
                "docset_B",
                "sealed_B",
                "decoded_B",
                "ratio",
            ],
        );
        for (peer, s) in self.per_peer.iter().enumerate() {
            t.row(&[
                peer.to_string(),
                s.postings.to_string(),
                s.resident_bytes().to_string(),
                s.docset_bytes.to_string(),
                s.sealed_bytes.to_string(),
                s.decoded_baseline_bytes().to_string(),
                fnum(s.decoded_baseline_bytes() as f64 / s.resident_bytes().max(1) as f64),
            ]);
        }
        t.row(&[
            "total".to_string(),
            self.per_peer
                .iter()
                .map(|s| s.postings)
                .sum::<u64>()
                .to_string(),
            self.resident_total().to_string(),
            self.per_peer
                .iter()
                .map(|s| s.docset_bytes)
                .sum::<u64>()
                .to_string(),
            self.sealed_total().to_string(),
            self.baseline_total().to_string(),
            fnum(self.improvement()),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdk_core::{HdkConfig, OverlayKind};
    use hdk_corpus::{partition_documents, CollectionGenerator, GeneratorConfig};

    #[test]
    fn footprint_measures_and_improves() {
        let c = CollectionGenerator::new(GeneratorConfig {
            num_docs: 240,
            vocab_size: 2_000,
            avg_doc_len: 50,
            num_topics: 20,
            topic_vocab: 50,
            ..GeneratorConfig::default()
        })
        .generate();
        let parts = partition_documents(c.len(), 4, 5);
        let n = HdkNetwork::build(
            &c,
            &parts,
            HdkConfig {
                dfmax: 15,
                ff: 2_000,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        let f = MemoryFootprint::measure(&n);
        assert_eq!(f.per_peer.len(), 4);
        assert!(f.resident_total() > 0);
        assert!(
            f.improvement() >= 2.0,
            "compressed residency should clearly beat 12 B/posting, got {:.2}x",
            f.improvement()
        );
        // Matches the index's own accounting hook; nothing is sealed on
        // the in-memory default.
        assert_eq!(f.resident_total(), n.index().resident_posting_bytes());
        assert_eq!(f.sealed_total(), 0);
        let table = f.table("unit_memfoot");
        assert_eq!(table.len(), 5, "4 peers + total row");
    }

    #[test]
    fn tiered_footprint_splits_hot_from_sealed_and_obeys_the_budget() {
        let c = CollectionGenerator::new(GeneratorConfig {
            num_docs: 240,
            vocab_size: 2_000,
            avg_doc_len: 50,
            num_topics: 20,
            topic_vocab: 50,
            ..GeneratorConfig::default()
        })
        .generate();
        let parts = partition_documents(c.len(), 4, 5);
        let hot_bytes = 1 << 15;
        let n = HdkNetwork::build(
            &c,
            &parts,
            HdkConfig {
                dfmax: 15,
                ff: 2_000,
                store: hdk_core::StoreConfig::segment(hot_bytes),
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        let f = MemoryFootprint::measure(&n);
        assert!(f.resident_total() <= hot_bytes, "hot tier over budget");
        assert!(
            f.sealed_total() > 0,
            "nothing spilled under a 32 KiB budget"
        );
        assert_eq!(f.sealed_total(), n.index().sealed_segment_bytes());
    }
}
