//! Micro-benchmarks: local HDK computation — the per-peer cost of the
//! iterative key generation (Section 3.1).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdk_core::window_keys::{candidate_postings, single_term_postings};
use hdk_core::Key;
use hdk_corpus::{CollectionGenerator, DocId, GeneratorConfig};
use hdk_text::TermId;
use std::collections::HashSet;
use std::hint::black_box;

type KeygenSetup = (Vec<(DocId, Vec<TermId>)>, HashSet<TermId>, HashSet<Key>);

fn setup() -> KeygenSetup {
    let coll = CollectionGenerator::new(GeneratorConfig {
        num_docs: 500,
        vocab_size: 8_000,
        avg_doc_len: 80,
        ..GeneratorConfig::default()
    })
    .generate();
    let docs: Vec<(DocId, Vec<TermId>)> = coll.iter().map(|(d, t)| (d, t.to_vec())).collect();
    // Treat the 200 most frequent terms as NDK singles (realistic shape).
    let stats = hdk_corpus::FrequencyStats::compute(&coll);
    let mut by_freq: Vec<(u64, TermId)> = stats.iter().map(|(t, cf, _)| (cf, t)).collect();
    by_freq.sort_unstable_by_key(|&(cf, _)| std::cmp::Reverse(cf));
    let ndk1: HashSet<TermId> = by_freq.iter().take(200).map(|&(_, t)| t).collect();
    let ndk_prev: HashSet<Key> = ndk1.iter().map(|&t| Key::single(t)).collect();
    (docs, ndk1, ndk_prev)
}

fn bench_keygen(c: &mut Criterion) {
    let (docs, ndk1, ndk_prev) = setup();
    let tokens: u64 = docs.iter().map(|(_, t)| t.len() as u64).sum();
    let mut g = c.benchmark_group("keygen");
    g.sample_size(10);
    g.throughput(Throughput::Elements(tokens));

    g.bench_function("single_terms_500_docs", |b| {
        b.iter(|| {
            single_term_postings(
                docs.iter().map(|(d, t)| (*d, t.as_slice())),
                black_box(&HashSet::new()),
            )
        })
    });
    g.bench_function("pairs_w20_500_docs", |b| {
        b.iter(|| {
            candidate_postings(
                docs.iter().map(|(d, t)| (*d, t.as_slice())),
                20,
                2,
                black_box(&ndk1),
                black_box(&ndk_prev),
                false,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_keygen);
criterion_main!(benches);
