//! Micro-benchmarks: centralized engine — index build and BM25 query
//! throughput (the Figure 7 baseline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdk_corpus::{CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig};
use hdk_ir::CentralizedEngine;
use std::hint::black_box;

fn collection() -> hdk_corpus::Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs: 2_000,
        vocab_size: 10_000,
        avg_doc_len: 80,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn bench_build(c: &mut Criterion) {
    let coll = collection();
    let mut g = c.benchmark_group("bm25/build");
    g.sample_size(10);
    g.throughput(Throughput::Elements(coll.len() as u64));
    g.bench_function("index_2k_docs", |b| {
        b.iter(|| CentralizedEngine::build(black_box(&coll)))
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let coll = collection();
    let engine = CentralizedEngine::build(&coll);
    let log = QueryLog::generate(
        &coll,
        &QueryLogConfig {
            num_queries: 100,
            ..QueryLogConfig::default()
        },
    );
    let mut g = c.benchmark_group("bm25/query");
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("top20_batch", |b| {
        b.iter(|| {
            for q in &log.queries {
                black_box(engine.search(&q.terms, 20));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
