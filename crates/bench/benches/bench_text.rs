//! Micro-benchmarks: text pipeline throughput (tokenizer, stemmer, full
//! analyzer, window enumeration).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hdk_text::{stem, tokenize, window, Analyzer, TermId};
use std::hint::black_box;

const SAMPLE: &str = "Peer-to-peer retrieval engines theoretically offer the \
possibility to cope with web-scale document collections by distributing the \
indexing and querying load over large networks of collaborating peers. \
However, while P2P distribution results in smaller resource consumption at \
the level of individual peers, there is an ongoing debate about the overall \
scalability of P2P web search because of the claimed unacceptable bandwidth \
consumption induced by retrieval from very large document collections.";

fn bench_tokenizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("text/tokenize");
    g.throughput(Throughput::Bytes(SAMPLE.len() as u64));
    g.bench_function("paragraph", |b| {
        b.iter(|| tokenize(black_box(SAMPLE)).count())
    });
    g.finish();
}

fn bench_stemmer(c: &mut Criterion) {
    let words: Vec<String> = tokenize(SAMPLE).collect();
    let mut g = c.benchmark_group("text/porter");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("paragraph_words", |b| {
        b.iter(|| {
            for w in &words {
                black_box(stem(w));
            }
        })
    });
    g.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let mut g = c.benchmark_group("text/analyzer");
    g.throughput(Throughput::Bytes(SAMPLE.len() as u64));
    g.bench_function("full_pipeline", |b| {
        b.iter_batched(
            Analyzer::new,
            |mut a| a.analyze(black_box(SAMPLE)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_windows(c: &mut Criterion) {
    let tokens: Vec<TermId> = (0..10_000u32).map(|i| TermId(i % 500)).collect();
    let mut g = c.benchmark_group("text/windows");
    g.throughput(Throughput::Elements(tokens.len() as u64));
    g.bench_function("context_events_w20", |b| {
        b.iter(|| {
            let mut n = 0usize;
            window::for_each_context(black_box(&tokens), 20, |prefix, _| n += prefix.len());
            n
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_stemmer,
    bench_analyzer,
    bench_windows
);
criterion_main!(benches);
