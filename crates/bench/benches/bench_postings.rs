//! Micro-benchmarks: posting-list codec and merge operations — what
//! actually travels over the simulated wire.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdk_corpus::DocId;
use hdk_ir::{codec, Posting, PostingList};
use std::hint::black_box;

fn list(n: u32, stride: u32) -> PostingList {
    PostingList::from_sorted(
        (0..n)
            .map(|i| Posting {
                doc: DocId(i * stride),
                tf: 1 + i % 7,
                doc_len: 80 + i % 40,
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let dense = list(10_000, 1);
    let sparse = list(10_000, 97);
    let mut g = c.benchmark_group("postings/codec");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("encode_dense", |b| {
        b.iter(|| codec::encode(black_box(&dense)))
    });
    g.bench_function("encode_sparse", |b| {
        b.iter(|| codec::encode(black_box(&sparse)))
    });
    let enc = codec::encode(&dense);
    g.bench_function("decode_dense", |b| {
        b.iter(|| codec::decode(black_box(enc.clone())).unwrap())
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let a = list(5_000, 2);
    let b_ = list(5_000, 3);
    let mut g = c.benchmark_group("postings/merge");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("union", |b| b.iter(|| black_box(&a).union(black_box(&b_))));
    g.bench_function("intersect", |b| {
        b.iter(|| black_box(&a).intersect(black_box(&b_)))
    });
    g.bench_function("truncate_top_400", |b| {
        b.iter(|| black_box(&a).truncate_top_k(400, |p| f64::from(p.tf)))
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_merge);
criterion_main!(benches);
