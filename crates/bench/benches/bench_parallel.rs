//! Parallel-indexing scaling: the bulk-synchronous round loop and the
//! batched query path at 1 thread vs. the full pool, on a 32-peer
//! collection. The 1-thread numbers are the single-threaded baseline; the
//! determinism tests (`tests/thread_invariance.rs`) prove both configs
//! produce bit-identical results, so any speedup is free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdk_core::{HdkConfig, HdkNetwork, OverlayKind};
use hdk_corpus::{
    partition_documents, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::PeerId;
use hdk_text::TermId;
use std::hint::black_box;

const PEERS: usize = 32;

fn collection() -> hdk_corpus::Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs: 1_600,
        vocab_size: 8_000,
        avg_doc_len: 60,
        num_topics: 40,
        topic_vocab: 60,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn hdk_config() -> HdkConfig {
    HdkConfig {
        dfmax: 20,
        ff: 8_000,
        ..HdkConfig::default()
    }
}

fn with_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    match threads {
        Some(n) => std::env::set_var("RAYON_NUM_THREADS", n.to_string()),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn bench_build(c: &mut Criterion) {
    let coll = collection();
    let parts = partition_documents(coll.len(), PEERS, 11);
    let mut g = c.benchmark_group("parallel/build_32peers");
    g.sample_size(10);
    g.throughput(Throughput::Elements(coll.len() as u64));
    for threads in [Some(1), None] {
        let label = threads.map_or("default".to_string(), |n| n.to_string());
        g.bench_with_input(BenchmarkId::new("threads", label), &threads, |b, &t| {
            b.iter(|| {
                with_threads(t, || {
                    HdkNetwork::build(black_box(&coll), &parts, hdk_config(), OverlayKind::PGrid)
                })
            })
        });
    }
    g.finish();
}

fn bench_query_batch(c: &mut Criterion) {
    let coll = collection();
    let parts = partition_documents(coll.len(), PEERS, 11);
    let network = HdkNetwork::build(&coll, &parts, hdk_config(), OverlayKind::PGrid);
    let log = QueryLog::generate(
        &coll,
        &QueryLogConfig {
            num_queries: 400,
            ..QueryLogConfig::default()
        },
    );
    let batch: Vec<(PeerId, &[TermId])> = log
        .queries
        .iter()
        .map(|q| (PeerId(u64::from(q.id) % PEERS as u64), q.terms.as_slice()))
        .collect();
    let mut g = c.benchmark_group("parallel/query_batch");
    g.throughput(Throughput::Elements(batch.len() as u64));
    for threads in [Some(1), None] {
        let label = threads.map_or("default".to_string(), |n| n.to_string());
        g.bench_with_input(BenchmarkId::new("threads", label), &threads, |b, &t| {
            b.iter(|| with_threads(t, || network.query_batch(black_box(&batch), 20)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_query_batch);
criterion_main!(benches);
