//! Decoded-vs-block storage on the three hot paths the compressed-posting
//! refactor touched: insert (merge an incoming batch into the resident
//! list), lookup (hand the stored postings to a querying peer), and rank
//! (stream the retrieved postings through the scorer).
//!
//! After the criterion groups, `main` runs the codec-comparison grid —
//! the same four operations (encode / decode / merge / rank) hand-timed
//! under the legacy LEB128 codec and the gv4 group-varint codec — and
//! writes the machine-readable `BENCH_codec.json` artifact. The grid
//! asserts the tentpole acceptance bound: a gv4 append-path merge stays
//! within 1.1x of the decoded-union merge on the same workload.

use criterion::{criterion_group, Criterion, Throughput};
use hdk_bench::json::Json;
use hdk_corpus::DocId;
use hdk_ir::{Bm25, Codec, CompressedPostings, Posting, PostingList};
use std::hint::black_box;

fn list(n: u32, start: u32, stride: u32) -> PostingList {
    PostingList::from_sorted(
        (0..n)
            .map(|i| Posting {
                doc: DocId(start + i * stride),
                tf: 1 + i % 7,
                doc_len: 80 + i % 40,
            })
            .collect(),
    )
}

/// Insert path: merge a 64-posting batch into a 4k-posting resident list.
fn bench_insert(c: &mut Criterion) {
    let resident_list = list(4_000, 0, 3);
    let batch_list = list(64, 1, 200);
    let resident_block = CompressedPostings::from_list(&resident_list);
    let batch_block = CompressedPostings::from_list(&batch_list);
    let mut g = c.benchmark_group("compressed/insert");
    g.throughput(Throughput::Elements(4_064));
    g.bench_function("decoded_union", |b| {
        b.iter(|| {
            let merged = black_box(&resident_list).union(black_box(&batch_list));
            let new_docs = batch_list
                .docs()
                .filter(|&d| !resident_list.contains_doc(d))
                .count();
            (merged, new_docs)
        })
    });
    g.bench_function("block_merge_counting", |b| {
        b.iter(|| black_box(&resident_block).merge_counting(black_box(&batch_block)))
    });
    g.finish();
}

/// Lookup path: the response payload handed to a querying peer. The block
/// clone is a refcount bump; the decoded clone copies every posting.
fn bench_lookup(c: &mut Criterion) {
    let stored_list = list(4_000, 0, 3);
    let stored_block = CompressedPostings::from_list(&stored_list);
    let mut g = c.benchmark_group("compressed/lookup");
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("decoded_clone", |b| {
        b.iter(|| black_box(&stored_list).clone())
    });
    g.bench_function("block_clone", |b| {
        b.iter(|| black_box(&stored_block).clone())
    });
    g.finish();
}

/// Rank path: BM25 over the retrieved postings — decode-then-scan vs
/// streaming straight off the block.
fn bench_rank(c: &mut Criterion) {
    let stored_block = CompressedPostings::from_list(&list(4_000, 0, 3));
    let bm25 = Bm25::default();
    let score = |p: &Posting| bm25.score(p.tf, p.doc_len, 100.0, 500, 100_000);
    let mut g = c.benchmark_group("compressed/rank");
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("decode_then_rank", |b| {
        b.iter(|| {
            let decoded = black_box(&stored_block).decode();
            decoded.postings().iter().map(score).sum::<f64>()
        })
    });
    g.bench_function("stream_block", |b| {
        b.iter(|| {
            black_box(&stored_block)
                .iter()
                .map(|p| score(&p))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_lookup, bench_rank);

/// A posting list with *mixed-width* values — doc gaps spanning one to
/// three varint bytes, two-byte doc lengths — the shape of a DHK block
/// whose DFmax postings are scattered over a large doc-id space. On this
/// (realistic) shape the per-byte LEB128 continuation branch is
/// unpredictable, which is exactly what the gv4 codec removes; the
/// uniform `list` above is the codec's worst case (every value one byte,
/// perfectly predicted).
fn varied_list(n: u32, seed: u64) -> PostingList {
    let mut x = seed | 1;
    let mut doc = 0u32;
    let mut postings = Vec::with_capacity(n as usize);
    for _ in 0..n {
        // xorshift64 — deterministic, dependency-free.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        doc += 1 + (x as u32) % 70_000;
        postings.push(Posting {
            doc: DocId(doc),
            tf: 1 + ((x >> 8) as u32) % 50,
            doc_len: 60 + ((x >> 16) as u32) % 4_000,
        });
    }
    PostingList::from_sorted(postings)
}

/// Median wall-clock seconds of `f` over `reps` samples (after a warmup).
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[reps / 2]
}

/// Per-codec timings (ns per operation) of one grid cell set.
struct CodecTimings {
    encode_ns: f64,
    decode_ns: f64,
    merge_append_ns: f64,
    merge_interleaved_ns: f64,
    rank_ns: f64,
    encoded_bytes: usize,
}

fn grid_for(
    codec: Codec,
    resident_list: &PostingList,
    inter_list: &PostingList,
    append_list: &PostingList,
) -> CodecTimings {
    const INNER: usize = 64;
    const REPS: usize = 21;
    let resident = CompressedPostings::from_list_with(resident_list, codec);
    let append = CompressedPostings::from_list_with(append_list, codec);
    let inter = CompressedPostings::from_list_with(inter_list, codec);
    let bm25 = Bm25::default();
    let per_op = |secs: f64| secs / INNER as f64 * 1e9;
    let encode = time_median(REPS, || {
        for _ in 0..INNER {
            black_box(CompressedPostings::from_list_with(
                black_box(resident_list),
                codec,
            ));
        }
    });
    let decode = time_median(REPS, || {
        for _ in 0..INNER {
            black_box(black_box(&resident).decode());
        }
    });
    let merge_append = time_median(REPS, || {
        for _ in 0..INNER {
            black_box(black_box(&resident).merge_counting(black_box(&append)));
        }
    });
    let merge_inter = time_median(REPS, || {
        for _ in 0..INNER {
            black_box(black_box(&resident).merge_counting(black_box(&inter)));
        }
    });
    let rank = time_median(REPS, || {
        for _ in 0..INNER {
            let sum: f64 = black_box(&resident)
                .iter()
                .map(|p| bm25.score(p.tf, p.doc_len, 100.0, 500, 100_000))
                .sum();
            black_box(sum);
        }
    });
    CodecTimings {
        encode_ns: per_op(encode),
        decode_ns: per_op(decode),
        merge_append_ns: per_op(merge_append),
        merge_interleaved_ns: per_op(merge_inter),
        rank_ns: per_op(rank),
        encoded_bytes: resident.encoded_len(),
    }
}

/// The codec-comparison grid + `BENCH_codec.json` artifact.
fn codec_grid() {
    const INNER: usize = 64;
    const REPS: usize = 21;
    let resident_list = varied_list(4_000, 0x5EED);
    let max_doc = resident_list.postings().last().unwrap().doc.0;
    // Interleaved batch: varied docs *inside* the resident range.
    let inter_list = PostingList::from_sorted(
        varied_list(64, 0xBEEF)
            .postings()
            .iter()
            .map(|p| {
                let doc = p.doc.0 % max_doc;
                (
                    doc,
                    Posting {
                        doc: DocId(doc),
                        ..*p
                    },
                )
            })
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_values()
            .collect(),
    );
    // Append batch: strictly beyond the resident max doc (the fast path).
    let append_list = PostingList::from_sorted(
        varied_list(64, 0xFACE)
            .postings()
            .iter()
            .map(|p| Posting {
                doc: DocId(p.doc.0 + max_doc + 5),
                ..*p
            })
            .collect(),
    );
    let leb = grid_for(Codec::Leb128, &resident_list, &inter_list, &append_list);
    let gv4 = grid_for(Codec::Gv4, &resident_list, &inter_list, &append_list);
    let decoded_union_append_ns = time_median(REPS, || {
        for _ in 0..INNER {
            let merged = black_box(&resident_list).union(black_box(&append_list));
            let new_docs = append_list
                .docs()
                .filter(|&d| !resident_list.contains_doc(d))
                .count();
            black_box((merged, new_docs));
        }
    }) / INNER as f64
        * 1e9;

    let row = |name: &str, t: &CodecTimings| {
        Json::obj([
            ("codec", name.into()),
            ("encode_ns", t.encode_ns.into()),
            ("decode_ns", t.decode_ns.into()),
            ("merge_append_ns", t.merge_append_ns.into()),
            ("merge_interleaved_ns", t.merge_interleaved_ns.into()),
            ("rank_ns", t.rank_ns.into()),
            ("encoded_bytes", t.encoded_bytes.into()),
        ])
    };
    let append_ratio = gv4.merge_append_ns / decoded_union_append_ns;
    let rank_speedup = leb.rank_ns / gv4.rank_ns;
    let json = Json::obj([
        ("bench", "codec_grid".into()),
        ("resident_postings", 4_000usize.into()),
        ("batch_postings", 64usize.into()),
        ("grid", Json::arr([row("leb128", &leb), row("gv4", &gv4)])),
        (
            "baseline",
            Json::obj([("decoded_union_append_ns", decoded_union_append_ns.into())]),
        ),
        ("gv4_append_vs_decoded_union", append_ratio.into()),
        ("rank_speedup_gv4_over_leb128", rank_speedup.into()),
    ]);
    // Anchor to the workspace root (cargo bench runs with the package
    // directory as cwd), matching where BENCH_read_scaling.json lives.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    match std::fs::write(path, json.render() + "\n") {
        Ok(()) => eprintln!("[codec_grid] wrote {path}"),
        Err(e) => eprintln!("[codec_grid] could not write {path}: {e}"),
    }
    println!(
        "[codec_grid] op ns/call       leb128      gv4\n\
         [codec_grid] encode        {:>9.0} {:>8.0}\n\
         [codec_grid] decode        {:>9.0} {:>8.0}\n\
         [codec_grid] merge append  {:>9.0} {:>8.0}  (decoded union {:.0})\n\
         [codec_grid] merge inter   {:>9.0} {:>8.0}\n\
         [codec_grid] rank          {:>9.0} {:>8.0}  ({rank_speedup:.2}x)\n\
         [codec_grid] resident bytes{:>9} {:>8}",
        leb.encode_ns,
        gv4.encode_ns,
        leb.decode_ns,
        gv4.decode_ns,
        leb.merge_append_ns,
        gv4.merge_append_ns,
        decoded_union_append_ns,
        leb.merge_interleaved_ns,
        gv4.merge_interleaved_ns,
        leb.rank_ns,
        gv4.rank_ns,
        leb.encoded_bytes,
        gv4.encoded_bytes,
    );
    // Tentpole acceptance bound: the gv4 append-path merge must stay
    // within 1.1x of the decoded-union merge on the same workload.
    assert!(
        append_ratio <= 1.1,
        "gv4 append merge {:.0} ns is {append_ratio:.2}x the decoded-union \
         baseline {decoded_union_append_ns:.0} ns (bound: 1.1x)",
        gv4.merge_append_ns,
    );
}

fn main() {
    benches();
    codec_grid();
}
