//! Decoded-vs-block storage on the three hot paths the compressed-posting
//! refactor touched: insert (merge an incoming batch into the resident
//! list), lookup (hand the stored postings to a querying peer), and rank
//! (stream the retrieved postings through the scorer).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdk_corpus::DocId;
use hdk_ir::{Bm25, CompressedPostings, Posting, PostingList};
use std::hint::black_box;

fn list(n: u32, start: u32, stride: u32) -> PostingList {
    PostingList::from_sorted(
        (0..n)
            .map(|i| Posting {
                doc: DocId(start + i * stride),
                tf: 1 + i % 7,
                doc_len: 80 + i % 40,
            })
            .collect(),
    )
}

/// Insert path: merge a 64-posting batch into a 4k-posting resident list.
fn bench_insert(c: &mut Criterion) {
    let resident_list = list(4_000, 0, 3);
    let batch_list = list(64, 1, 200);
    let resident_block = CompressedPostings::from_list(&resident_list);
    let batch_block = CompressedPostings::from_list(&batch_list);
    let mut g = c.benchmark_group("compressed/insert");
    g.throughput(Throughput::Elements(4_064));
    g.bench_function("decoded_union", |b| {
        b.iter(|| {
            let merged = black_box(&resident_list).union(black_box(&batch_list));
            let new_docs = batch_list
                .docs()
                .filter(|&d| !resident_list.contains_doc(d))
                .count();
            (merged, new_docs)
        })
    });
    g.bench_function("block_merge_counting", |b| {
        b.iter(|| black_box(&resident_block).merge_counting(black_box(&batch_block)))
    });
    g.finish();
}

/// Lookup path: the response payload handed to a querying peer. The block
/// clone is a refcount bump; the decoded clone copies every posting.
fn bench_lookup(c: &mut Criterion) {
    let stored_list = list(4_000, 0, 3);
    let stored_block = CompressedPostings::from_list(&stored_list);
    let mut g = c.benchmark_group("compressed/lookup");
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("decoded_clone", |b| {
        b.iter(|| black_box(&stored_list).clone())
    });
    g.bench_function("block_clone", |b| {
        b.iter(|| black_box(&stored_block).clone())
    });
    g.finish();
}

/// Rank path: BM25 over the retrieved postings — decode-then-scan vs
/// streaming straight off the block.
fn bench_rank(c: &mut Criterion) {
    let stored_block = CompressedPostings::from_list(&list(4_000, 0, 3));
    let bm25 = Bm25::default();
    let score = |p: &Posting| bm25.score(p.tf, p.doc_len, 100.0, 500, 100_000);
    let mut g = c.benchmark_group("compressed/rank");
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("decode_then_rank", |b| {
        b.iter(|| {
            let decoded = black_box(&stored_block).decode();
            decoded.postings().iter().map(score).sum::<f64>()
        })
    });
    g.bench_function("stream_block", |b| {
        b.iter(|| {
            black_box(&stored_block)
                .iter()
                .map(|p| score(&p))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_lookup, bench_rank);
criterion_main!(benches);
