//! The RPC layer's two costs, measured:
//!
//! 1. **InProc dispatch overhead** — the same key-lookup workload through
//!    the typed message layer (`GlobalIndex::lookup_many` → `Request` →
//!    `InProc` → DHT) vs. raw `Dht::lookup_many` calls. The message layer
//!    adds one enum construction + a vtable call + per-key `Addressed`
//!    wrapping per level; this bench pins that to "within noise" of the
//!    direct call (the two are printed side by side for the CI log).
//!
//! 2. **SimNet smoke** — the identical query workload over the simulated
//!    network at LAN and WAN settings: wall-clock overhead of the timing
//!    model itself (the virtual latencies cost arithmetic, not sleeping),
//!    with per-kind histogram means logged.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdk_core::{
    BackendConfig, GlobalIndex, HdkConfig, HdkNetwork, Key, KeyLookup, OverlayKind, QueryService,
};
use hdk_corpus::{partition_documents, Collection, CollectionGenerator, DocId, GeneratorConfig};
use hdk_ir::{CompressedPostings, Posting, PostingList};
use hdk_p2p::{Dht, KeyHash, MsgKind, Overlay, PGrid, PeerId, SimNetConfig};
use hdk_text::TermId;
use std::hint::black_box;

const PEERS: usize = 16;

fn collection() -> Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs: 1_000,
        vocab_size: 7_000,
        avg_doc_len: 60,
        num_topics: 40,
        topic_vocab: 60,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn build(backend: BackendConfig) -> (QueryService, Vec<Vec<TermId>>) {
    let coll = collection();
    let parts = partition_documents(coll.len(), PEERS, 7);
    let network = HdkNetwork::build_with(
        &coll,
        &parts,
        HdkConfig {
            dfmax: 12,
            smax: 3,
            ff: u64::MAX,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
        backend,
    );
    let queries: Vec<Vec<TermId>> = (0..32)
        .map(|i| coll.long_query(i * 37, 5 + i % 3))
        .collect();
    (network.query_service(), queries)
}

/// A posting block shared by every benchmark entry (the refcounted clone
/// is what a lookup response hands back, on both paths).
fn block() -> CompressedPostings {
    CompressedPostings::from_list(&PostingList::from_unsorted(
        (0..12u32)
            .map(|d| Posting {
                doc: DocId(d * 7),
                tf: 1 + d % 4,
                doc_len: 80,
            })
            .collect(),
    ))
}

/// InProc dispatch overhead, isolated: the *identical* batched key-lookup
/// workload — same keys, same resident entries, same metering, same
/// stripe-grouped parallel reads — once through the typed message layer
/// (`GlobalIndex::lookup_many` → `Request::LookupMany` → `InProc`) and
/// once as raw `Dht::lookup_many` calls. The delta is the message layer
/// itself: per-level enum construction, per-key `Addressed` wrapping, one
/// boxed-trait dispatch.
fn bench_dispatch_overhead(c: &mut Criterion) {
    const KEYS: u32 = 20_000;
    let overlay =
        || -> Box<dyn Overlay> { Box::new(PGrid::new((0..PEERS as u64).map(PeerId).collect())) };
    let payload = block();

    // The RPC side: a GlobalIndex over the in-process backend.
    let index = GlobalIndex::new(overlay(), 64);
    for t in 0..KEYS {
        index.insert_block(
            PeerId(u64::from(t) % PEERS as u64),
            Key::single(TermId(t)),
            &payload,
        );
    }
    // The direct side: a raw Dht holding the same blocks under the same
    // hashes, read with the same response shape.
    let dht: Dht<CompressedPostings> = Dht::new(overlay());
    for t in 0..KEYS {
        let key = Key::single(TermId(t)).dht_hash();
        let b = payload.clone();
        dht.upsert(
            PeerId(u64::from(t) % PEERS as u64),
            key,
            b.len() as u64,
            b.encoded_len() as u64,
            || b.clone(),
            |_| {},
        );
    }

    // 256 levels of 8 keys each — the fan-out width a deep lattice level
    // resolves per message set (every 16th key probes a miss).
    let levels: Vec<Vec<Key>> = (0..256u32)
        .map(|l| {
            (0..8u32)
                .map(|i| Key::single(TermId((l * 97 + i * 16 + i) % (KEYS + KEYS / 16))))
                .collect()
        })
        .collect();
    let hash_levels: Vec<Vec<KeyHash>> = levels
        .iter()
        .map(|level| level.iter().map(Key::dht_hash).collect())
        .collect();

    let mut g = c.benchmark_group("rpc/dispatch");
    g.throughput(Throughput::Elements((levels.len() * 8) as u64));
    g.bench_function("direct/dht_lookup_many", |b| {
        b.iter(|| {
            for (i, level) in hash_levels.iter().enumerate() {
                black_box(dht.lookup_many(
                    PeerId(i as u64 % PEERS as u64),
                    i as u64,
                    level,
                    |_, v| match v {
                        Some(block) => (
                            Some(KeyLookup {
                                postings: block.clone(),
                                df: block.len() as u32,
                                is_ndk: false,
                            }),
                            block.len() as u64,
                            block.encoded_len() as u64,
                        ),
                        None => (None, 0, 8),
                    },
                ));
            }
        })
    });
    g.bench_function("rpc/global_index_lookup_many", |b| {
        b.iter(|| {
            for (i, level) in levels.iter().enumerate() {
                black_box(index.lookup_many(PeerId(i as u64 % PEERS as u64), i as u64, level));
            }
        })
    });
    g.finish();
}

/// The same query workload over the simulated network: the timing model is
/// pure arithmetic on the virtual clock, so SimNet wall-clock should sit
/// within a small factor of InProc while producing full latency
/// histograms.
fn bench_simnet_smoke(c: &mut Criterion) {
    // The network models come from the latency sweep's canonical table, so
    // this smoke and `latency_sweep` always benchmark the same networks.
    let configs = hdk_bench::latency::sweep_configs();
    let model = |label: &str| -> SimNetConfig {
        configs
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("no {label:?} in sweep_configs"))
            .1
    };
    let mut g = c.benchmark_group("rpc/simnet");
    for (label, backend) in [
        ("inproc", BackendConfig::InProc),
        ("lan", BackendConfig::SimNet(model("lan"))),
        ("lossy-wan", BackendConfig::SimNet(model("lossy-wan"))),
    ] {
        let (service, queries) = build(backend);
        g.throughput(Throughput::Elements(queries.len() as u64));
        g.bench_function(format!("backend/{label}"), |b| {
            b.iter(|| {
                for (i, q) in queries.iter().enumerate() {
                    black_box(service.query(PeerId(i as u64 % PEERS as u64), q, 20));
                }
            })
        });
        let snap = service.snapshot();
        let h = snap.latency(MsgKind::QueryResponse);
        eprintln!(
            "[bench_rpc] backend={label}: {} responses, mean latency {:.3} ms, retries {}, virtual {:.1} ms",
            h.samples,
            h.mean_ns() / 1e6,
            h.retries,
            service.virtual_time_ns() as f64 / 1e6,
        );
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch_overhead, bench_simnet_smoke);
criterion_main!(benches);
