//! Single-query latency through the plan/execute pipeline: the per-level
//! parallel probe fan-out at 1 thread vs. the full pool, plus the cached
//! path where partial hits skip their probes.
//!
//! `parallel/query_batch` (in `bench_parallel`) measures cross-query
//! parallelism; this bench measures *intra*-query parallelism — one long
//! query whose lattice levels fan out over the DHT stripes. On a
//! single-CPU container both thread counts time alike by construction;
//! CI's multi-core runners show the spread. Determinism across thread
//! counts is pinned by `tests/thread_invariance.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdk_core::{HdkConfig, HdkNetwork, OverlayKind, QueryCache};
use hdk_corpus::{partition_documents, CollectionGenerator, GeneratorConfig};
use hdk_ir::Codec;
use hdk_p2p::PeerId;
use hdk_text::TermId;
use std::hint::black_box;

const PEERS: usize = 16;

fn setup() -> (HdkNetwork, Vec<Vec<TermId>>) {
    setup_with(Codec::default())
}

fn setup_with(codec: Codec) -> (HdkNetwork, Vec<Vec<TermId>>) {
    let coll = CollectionGenerator::new(GeneratorConfig {
        num_docs: 1_200,
        vocab_size: 8_000,
        avg_doc_len: 60,
        num_topics: 40,
        topic_vocab: 60,
        ..GeneratorConfig::default()
    })
    .generate();
    let parts = partition_documents(coll.len(), PEERS, 7);
    let network = HdkNetwork::build(
        &coll,
        &parts,
        HdkConfig {
            dfmax: 12,
            smax: 4,
            ff: u64::MAX,
            codec,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    );
    // Long queries (6-8 distinct co-occurring terms) produce the deep,
    // wide lattices where per-level fan-out matters — sampled with the
    // same `Collection::long_query` the thread-invariance test uses, so
    // measured and guarded fan-out stay in lockstep.
    let queries: Vec<Vec<TermId>> = (0..32)
        .map(|i| coll.long_query(i * 37, 6 + i % 3))
        .collect();
    (network, queries)
}

fn with_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    match threads {
        Some(n) => std::env::set_var("RAYON_NUM_THREADS", n.to_string()),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn bench_single_query(c: &mut Criterion) {
    let (network, queries) = setup();
    // Report the measured lattice shape once so the runner log records the
    // fan-out the bench actually exercised.
    let mut widths = [0u64; 4];
    for q in &queries {
        let (_, profile) = network.query_profiled(PeerId(0), q, 20);
        for l in &profile.levels {
            widths[l.level - 1] += u64::from(l.planned);
        }
    }
    eprintln!(
        "[bench_query] avg fan-out per level over {} queries: {:?}",
        queries.len(),
        widths
            .iter()
            .map(|&w| w as f64 / queries.len() as f64)
            .collect::<Vec<_>>()
    );

    let mut g = c.benchmark_group("query/single");
    g.throughput(Throughput::Elements(queries.len() as u64));
    for threads in [Some(1), None] {
        let label = threads.map_or("default".to_string(), |n| n.to_string());
        g.bench_with_input(BenchmarkId::new("threads", label), &threads, |b, &t| {
            b.iter(|| {
                with_threads(t, || {
                    for (i, q) in queries.iter().enumerate() {
                        black_box(network.query(PeerId(i as u64 % PEERS as u64), q, 20));
                    }
                })
            })
        });
    }
    g.finish();
}

/// The block-codec leg of the latency table: the same 32-query pass over
/// builds that differ only in posting-block codec. Gv4's branch-free
/// 4-wide decode shows up here as end-to-end query latency, not just the
/// isolated rank-loop speedup `bench_codec` measures; scores are
/// codec-invariant (pinned by `tests/golden_snapshot.rs`), so the legs
/// are directly comparable.
fn bench_codec_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("query/codec");
    for codec in [Codec::Leb128, Codec::Gv4] {
        let (network, queries) = setup_with(codec);
        g.throughput(Throughput::Elements(queries.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("block_codec", format!("{codec:?}").to_lowercase()),
            &(),
            |b, ()| {
                b.iter(|| {
                    for (i, q) in queries.iter().enumerate() {
                        black_box(network.query(PeerId(i as u64 % PEERS as u64), q, 20));
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_cached_query(c: &mut Criterion) {
    let (network, queries) = setup();
    let mut g = c.benchmark_group("query/cached");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("warm_cache", |b| {
        let cache = QueryCache::new(4_096);
        // Warm it once; every timed pass is all hits (probes all skipped).
        for (i, q) in queries.iter().enumerate() {
            network.query_cached(PeerId(i as u64 % PEERS as u64), q, 20, &cache);
        }
        b.iter(|| {
            for (i, q) in queries.iter().enumerate() {
                black_box(network.query_cached(PeerId(i as u64 % PEERS as u64), q, 20, &cache));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_query,
    bench_codec_query,
    bench_cached_query
);
criterion_main!(benches);
