//! End-to-end benchmarks: building the distributed index (ST vs HDK) and
//! query throughput on both — the computational cost behind the traffic
//! numbers of Figures 3–6.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdk_core::{HdkConfig, HdkNetwork, OverlayKind, SingleTermNetwork};
use hdk_corpus::{
    partition_documents, Collection, CollectionGenerator, GeneratorConfig, QueryLog, QueryLogConfig,
};
use hdk_p2p::PeerId;
use std::hint::black_box;

fn setup() -> (Collection, Vec<Vec<hdk_corpus::DocId>>) {
    let coll = CollectionGenerator::new(GeneratorConfig {
        num_docs: 1_200,
        vocab_size: 10_000,
        avg_doc_len: 80,
        ..GeneratorConfig::default()
    })
    .generate();
    let parts = partition_documents(coll.len(), 8, 5);
    (coll, parts)
}

fn hdk_config() -> HdkConfig {
    HdkConfig {
        dfmax: 25,
        ff: 3_000,
        ..HdkConfig::default()
    }
}

fn bench_build(c: &mut Criterion) {
    let (coll, parts) = setup();
    let mut g = c.benchmark_group("e2e/build");
    g.sample_size(10);
    g.throughput(Throughput::Elements(coll.len() as u64));
    g.bench_function("st_1200_docs_8_peers", |b| {
        b.iter(|| SingleTermNetwork::build(black_box(&coll), &parts, OverlayKind::PGrid))
    });
    g.bench_function("hdk_1200_docs_8_peers", |b| {
        b.iter(|| HdkNetwork::build(black_box(&coll), &parts, hdk_config(), OverlayKind::PGrid))
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let (coll, parts) = setup();
    let st = SingleTermNetwork::build(&coll, &parts, OverlayKind::PGrid);
    let hdk = HdkNetwork::build(&coll, &parts, hdk_config(), OverlayKind::PGrid);
    let log = QueryLog::generate(
        &coll,
        &QueryLogConfig {
            num_queries: 100,
            ..QueryLogConfig::default()
        },
    );
    let mut g = c.benchmark_group("e2e/query");
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("st_top20_batch", |b| {
        b.iter(|| {
            for q in &log.queries {
                black_box(st.query(PeerId(u64::from(q.id) % 8), &q.terms, 20));
            }
        })
    });
    g.bench_function("hdk_top20_batch", |b| {
        b.iter(|| {
            for q in &log.queries {
                black_box(hdk.query(PeerId(u64::from(q.id) % 8), &q.terms, 20));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
