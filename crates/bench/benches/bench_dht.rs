//! Micro-benchmarks: overlay routing and DHT operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdk_p2p::{hash_u64s, ChordRing, Dht, KeyHash, Overlay, PGrid, PeerId};
use std::hint::black_box;

fn peers(n: u64) -> Vec<PeerId> {
    (0..n).map(PeerId).collect()
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht/route");
    g.throughput(Throughput::Elements(1_000));
    for n in [16u64, 128] {
        let grid = PGrid::new(peers(n));
        let ring = ChordRing::new(peers(n));
        let keys: Vec<KeyHash> = (0..1_000u64).map(|k| KeyHash(hash_u64s(&[k]))).collect();
        g.bench_with_input(BenchmarkId::new("pgrid", n), &n, |b, _| {
            b.iter(|| {
                let mut hops = 0u64;
                for (i, &k) in keys.iter().enumerate() {
                    hops += u64::from(grid.route(PeerId(i as u64 % n), black_box(k)).hops);
                }
                hops
            })
        });
        g.bench_with_input(BenchmarkId::new("chord", n), &n, |b, _| {
            b.iter(|| {
                let mut hops = 0u64;
                for (i, &k) in keys.iter().enumerate() {
                    hops += u64::from(ring.route(PeerId(i as u64 % n), black_box(k)).hops);
                }
                hops
            })
        });
    }
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht/storage");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("upsert_1k", |b| {
        b.iter_with_setup(
            || Dht::<u64>::new(Box::new(PGrid::new(peers(32)))),
            |dht| {
                for k in 0..1_000u64 {
                    dht.upsert(
                        PeerId(k % 32),
                        KeyHash(hash_u64s(&[k])),
                        1,
                        8,
                        || 0,
                        |v| *v += 1,
                    );
                }
                dht
            },
        )
    });
    let dht = Dht::<u64>::new(Box::new(PGrid::new(peers(32))));
    for k in 0..1_000u64 {
        dht.upsert(PeerId(0), KeyHash(hash_u64s(&[k])), 1, 8, || 0, |v| *v += 1);
    }
    g.bench_function("lookup_1k", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for k in 0..1_000u64 {
                sum += dht.lookup(PeerId(k % 32), KeyHash(hash_u64s(&[k])), |v| {
                    (v.copied().unwrap_or(0), 0, 0)
                });
            }
            sum
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routing, bench_storage);
criterion_main!(benches);
