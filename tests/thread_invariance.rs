//! The parallel indexing engine must be a pure optimization: thread count
//! changes wall-clock time, never results.
//!
//! The first test flips `RAYON_NUM_THREADS` (which the rayon pool re-reads
//! per fan-out) — process-global state — so every test in this binary
//! serializes on [`ENV_LOCK`] and the flipper restores the variable before
//! releasing it.

use p2p_hdk::prelude::*;
use std::sync::Mutex;

/// Serializes tests that touch (or must not observe changes to)
/// `RAYON_NUM_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn collection(seed: u64) -> Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs: 640,
        vocab_size: 4_000,
        avg_doc_len: 50,
        num_topics: 32,
        topic_vocab: 50,
        seed,
        ..GeneratorConfig::default()
    })
    .generate()
}

struct BuildArtifacts {
    report: p2p_hdk::core::BuildReport,
    traffic: TrafficSnapshot,
    topk: Vec<Vec<SearchResult>>,
    fetched: Vec<u64>,
}

/// Builds a 32-peer network and evaluates a query batch, capturing
/// everything the acceptance criteria call out: `BuildReport`, traffic
/// snapshot, and query top-k.
fn build_and_query(c: &Collection) -> BuildArtifacts {
    let partitions = partition_documents(c.len(), 32, 13);
    let network = HdkNetwork::build(
        c,
        &partitions,
        HdkConfig {
            dfmax: 15,
            ff: 3_000,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    );
    let log = QueryLog::generate(
        c,
        &QueryLogConfig {
            num_queries: 40,
            ..QueryLogConfig::default()
        },
    );
    let batch: Vec<(PeerId, &[TermId])> = log
        .queries
        .iter()
        .map(|q| (PeerId(u64::from(q.id) % 32), q.terms.as_slice()))
        .collect();
    let outcomes = network.query_batch(&batch, 20);
    BuildArtifacts {
        report: network.build_report(),
        traffic: network.snapshot(),
        topk: outcomes.iter().map(|o| o.results.clone()).collect(),
        fetched: outcomes.iter().map(|o| o.postings_fetched).collect(),
    }
}

#[test]
fn one_thread_and_many_threads_are_bit_identical() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(2026);
    let prev = std::env::var("RAYON_NUM_THREADS").ok();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = build_and_query(&c);

    std::env::set_var("RAYON_NUM_THREADS", "8");
    let parallel = build_and_query(&c);

    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    // BuildReport, field by field.
    assert_eq!(serial.report.num_peers, parallel.report.num_peers);
    assert_eq!(serial.report.num_docs, parallel.report.num_docs);
    assert_eq!(serial.report.sample_size, parallel.report.sample_size);
    assert_eq!(serial.report.rounds, parallel.report.rounds);
    assert_eq!(
        serial.report.inserted_by_size,
        parallel.report.inserted_by_size
    );
    assert_eq!(
        serial.report.stored_per_peer,
        parallel.report.stored_per_peer
    );
    assert_eq!(serial.report.counts, parallel.report.counts);
    // Full traffic snapshot: message/posting/byte/hop counters, per-kind
    // and per-peer.
    assert_eq!(serial.traffic, parallel.traffic);
    assert_eq!(serial.report.traffic, parallel.report.traffic);
    // Query top-k: same documents, same scores, same costs.
    assert_eq!(serial.topk, parallel.topk);
    assert_eq!(serial.fetched, parallel.fetched);
}

#[test]
fn gv4_codec_batch_is_thread_invariant_and_matches_legacy_results() {
    // The gv4 block codec must be a pure storage optimization, twice over:
    // thread count never changes results under gv4, and the codec itself
    // never changes decoded semantics — same top-k score bits, same
    // posting/lookup counts as a legacy-codec build of the same scenario.
    // `HDK_CODEC` is process-global (read by `HdkConfig::default`), so this
    // runs under the same lock as the thread flips.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(606);
    let prev_codec = std::env::var("HDK_CODEC").ok();
    let prev_threads = std::env::var("RAYON_NUM_THREADS").ok();

    std::env::set_var("HDK_CODEC", "gv4");
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = build_and_query(&c);
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = build_and_query(&c);
    std::env::set_var("HDK_CODEC", "leb128");
    let legacy = build_and_query(&c);

    match prev_codec {
        Some(v) => std::env::set_var("HDK_CODEC", v),
        None => std::env::remove_var("HDK_CODEC"),
    }
    match prev_threads {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    // Thread invariance under gv4: everything observable is bit-identical.
    assert_eq!(serial.report.counts, parallel.report.counts);
    assert_eq!(
        serial.report.stored_per_peer,
        parallel.report.stored_per_peer
    );
    assert_eq!(serial.traffic, parallel.traffic);
    assert_eq!(serial.topk, parallel.topk);
    assert_eq!(serial.fetched, parallel.fetched);

    // Codec equivalence: identical decoded semantics vs the legacy build.
    assert_eq!(serial.topk, legacy.topk, "top-k diverged across codecs");
    assert_eq!(serial.fetched, legacy.fetched);
    assert_eq!(serial.report.counts, legacy.report.counts);
    assert_eq!(
        serial.report.inserted_by_size,
        legacy.report.inserted_by_size
    );
    // Non-vacuity: the gv4 build really used a different wire encoding —
    // posting payload byte meters move while message counts stay put.
    let (gv4_ins, leb_ins) = (
        serial.traffic.kind(MsgKind::IndexInsert),
        legacy.traffic.kind(MsgKind::IndexInsert),
    );
    assert_eq!(gv4_ins.messages, leb_ins.messages);
    assert_eq!(gv4_ins.postings, leb_ins.postings);
    assert_ne!(
        gv4_ins.bytes, leb_ins.bytes,
        "gv4 produced byte-identical insert payloads — codec flip vacuous"
    );
}

#[test]
fn churn_interleaved_with_queries_is_thread_invariant() {
    // Peer joins interleaved with (internally parallel) query batches must
    // produce bit-identical reports, traffic and top-k whatever
    // `RAYON_NUM_THREADS` says — the churn-determinism contract from the
    // ROADMAP. Queries run between every join so the lattice walks observe
    // each intermediate index state.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(909);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 24,
            ..QueryLogConfig::default()
        },
    );
    let run = || {
        let mut network = HdkNetwork::build(
            &c.prefix(400),
            &partition_documents(400, 6, 13),
            HdkConfig {
                dfmax: 14,
                ff: u64::MAX,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        let mut topk: Vec<Vec<SearchResult>> = Vec::new();
        let mut migrations = Vec::new();
        for (round, join_at) in [(0u64, 400usize), (1, 520), (2, 640)] {
            let ids: Vec<PeerId> = network.peers().iter().map(|p| p.id).collect();
            let batch: Vec<(PeerId, &[TermId])> = log
                .queries
                .iter()
                .map(|q| (ids[q.id as usize % ids.len()], q.terms.as_slice()))
                .collect();
            topk.extend(
                network
                    .query_batch(&batch, 20)
                    .into_iter()
                    .map(|o| o.results),
            );
            if join_at < c.len() {
                let docs: Vec<Document> = (join_at..join_at + 120)
                    .map(|i| c.docs()[i].clone())
                    .collect();
                migrations.push(network.join_peer(PeerId(500 + round), docs));
            }
        }
        (network.build_report(), network.snapshot(), topk, migrations)
    };

    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = run();
    if let Some(v) = prev {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }

    assert_eq!(serial.0.inserted_by_size, parallel.0.inserted_by_size);
    assert_eq!(serial.0.stored_per_peer, parallel.0.stored_per_peer);
    assert_eq!(serial.0.counts, parallel.0.counts);
    assert_eq!(serial.0.traffic, parallel.0.traffic);
    assert_eq!(serial.1, parallel.1, "traffic snapshot diverged");
    assert_eq!(serial.2, parallel.2, "query top-k diverged");
    assert_eq!(serial.3, parallel.3, "migration stats diverged");
}

#[test]
fn churn_with_failures_is_thread_invariant() {
    // Churn in BOTH directions interleaved with parallel query batches on
    // a replicated (R=2) network: a join wave, a graceful departure, a
    // crash + repair — every observable (reports, loss/repair stats,
    // traffic counters incl. the Repair category, query top-k) must be
    // bit-identical whatever RAYON_NUM_THREADS says.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(515);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 20,
            ..QueryLogConfig::default()
        },
    );
    let run = || {
        let mut network = HdkNetwork::build(
            &c.prefix(400),
            &partition_documents(400, 6, 13),
            HdkConfig {
                dfmax: 14,
                ff: u64::MAX,
                replication: 2,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        let mut topk: Vec<Vec<SearchResult>> = Vec::new();
        let batch_round = |network: &HdkNetwork| {
            let ids: Vec<PeerId> = network.peers().iter().map(|p| p.id).collect();
            let batch: Vec<(PeerId, &[TermId])> = log
                .queries
                .iter()
                .map(|q| (ids[q.id as usize % ids.len()], q.terms.as_slice()))
                .collect();
            network
                .query_batch(&batch, 20)
                .into_iter()
                .map(|o| o.results)
                .collect::<Vec<_>>()
        };
        topk.extend(batch_round(&network));
        // Grow: two peers join with the remaining documents.
        let docs: Vec<Document> = (400..515).map(|i| c.docs()[i].clone()).collect();
        let (a, b) = docs.split_at(60);
        let migrations =
            network.join_peers(vec![(PeerId(700), a.to_vec()), (PeerId(701), b.to_vec())]);
        topk.extend(batch_round(&network));
        // Shrink gracefully, query the degraded-placement network.
        let handovers = network.leave_peers(vec![PeerId(1)]);
        topk.extend(batch_round(&network));
        // Crash + query during degradation + repair + query again.
        let loss = network.fail_peers(vec![PeerId(3)]);
        assert_eq!(loss.keys_lost, 0, "R=2 must survive a single crash");
        topk.extend(batch_round(&network));
        let repair = network.repair();
        assert!(repair.copies > 0);
        topk.extend(batch_round(&network));
        (
            network.build_report(),
            network.snapshot(),
            topk,
            (migrations, handovers, loss, repair),
        )
    };

    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = run();
    if let Some(v) = prev {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }

    assert_eq!(serial.0.inserted_by_size, parallel.0.inserted_by_size);
    assert_eq!(serial.0.stored_per_peer, parallel.0.stored_per_peer);
    assert_eq!(serial.0.counts, parallel.0.counts);
    assert_eq!(serial.1, parallel.1, "traffic snapshot diverged");
    assert_eq!(serial.2, parallel.2, "query top-k diverged");
    assert_eq!(serial.3, parallel.3, "churn statistics diverged");
    // Non-vacuity: repair traffic flowed in its own category.
    assert!(serial.1.kind(MsgKind::Repair).messages > 0);
}

#[test]
fn gossip_failure_detection_is_thread_and_backend_invariant() {
    // The gossip membership layer replaces the liveness oracle with
    // per-peer views converged by deterministic SWIM-style rounds. The
    // whole trajectory — probe schedules, suspicion/confirmation
    // transitions, the triggered repair, the failover timeouts queries
    // pay while views are stale, and the round count to convergence —
    // must be bit-identical under RAYON_NUM_THREADS ∈ {1, default} AND
    // across the in-process and simulated-network backends (gossip draws
    // its own probe loss from the config seed, never from the backend's
    // drop model).
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(818);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 48,
            ..QueryLogConfig::default()
        },
    );
    let run = |backend: BackendConfig| {
        let mut network = HdkNetwork::build_with(
            &c.prefix(400),
            &partition_documents(400, 8, 13),
            HdkConfig {
                dfmax: 14,
                ff: u64::MAX,
                replication: 2,
                gossip: GossipConfig {
                    fanout: 2,
                    suspicion_rounds: 2,
                    loss_prob: 0.2,
                    seed: 42,
                },
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
            backend,
        );
        // Distinct query slices per phase so every phase genuinely runs
        // lookups against the index state of that moment.
        let batch_round = |network: &HdkNetwork, phase: usize| {
            let ids: Vec<PeerId> = network.peers().iter().map(|p| p.id).collect();
            let batch: Vec<(PeerId, &[TermId])> = log.queries[phase * 16..(phase + 1) * 16]
                .iter()
                .map(|q| (ids[q.id as usize % ids.len()], q.terms.as_slice()))
                .collect();
            network
                .query_batch(&batch, 20)
                .into_iter()
                .map(|o| o.results)
                .collect::<Vec<_>>()
        };
        let mut topk = batch_round(&network, 0);
        assert_eq!(network.snapshot().failover_timeouts, 0);

        // One peer crashes. Nobody calls repair: detection, confirmation
        // and the repair trigger all have to come from gossip.
        let loss = network.fail_peers(vec![PeerId(3)]);
        assert_eq!(loss.keys_lost, 0, "R=2 must survive a single crash");
        topk.extend(batch_round(&network, 1));
        let timeouts_during = network.snapshot().failover_timeouts;
        assert!(
            timeouts_during > 0,
            "queries during the detection window must pay timeouts"
        );

        let mut outcomes = Vec::new();
        let mut triggered = None;
        while network.gossip_converged() != Some(true) {
            assert!(outcomes.len() < 64, "gossip failed to converge");
            let out = network.gossip_round();
            if let Some(r) = out.repair {
                triggered = Some(r);
            }
            outcomes.push(out);
        }
        let repair = triggered.expect("universal confirmation must trigger the repair sweep");
        assert!(repair.copies > 0, "triggered repair moved nothing");

        // Converged views route around the corpse for free.
        topk.extend(batch_round(&network, 2));
        assert_eq!(
            network.snapshot().failover_timeouts,
            timeouts_during,
            "post-convergence queries must pay zero failover timeouts"
        );
        (topk, outcomes, network.snapshot())
    };

    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run(BackendConfig::InProc);
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = run(BackendConfig::InProc);
    let sim = SimNetConfig {
        seed: 7,
        hop_ns: 200_000,
        jitter_ns: 80_000,
        ns_per_byte: 8,
        drop_prob: 0.1,
        timeout_ns: 2_000_000,
    };
    let simnet = run(BackendConfig::SimNet(sim));
    if let Some(v) = prev {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }

    // Thread invariance: the full snapshot (counters AND per-kind
    // histograms) plus every gossip outcome, bit for bit.
    assert_eq!(serial.0, parallel.0, "query top-k diverged across threads");
    assert_eq!(
        serial.1, parallel.1,
        "gossip outcomes diverged across threads"
    );
    assert_eq!(serial.2, parallel.2, "snapshot diverged across threads");
    // Backend invariance: identical results, view trajectories and
    // traffic counts — SimNet only adds time.
    assert_eq!(serial.0, simnet.0, "query top-k diverged across backends");
    assert_eq!(
        serial.1, simnet.1,
        "gossip outcomes diverged across backends"
    );
    assert!(
        serial.2.same_counts(&simnet.2),
        "traffic counts diverged across backends"
    );
    // And SimNet timed every gossip message it counted.
    let g = simnet.2.kind(MsgKind::Gossip);
    assert!(g.messages > 0, "no gossip traffic flowed");
    assert_eq!(
        simnet.2.latency(MsgKind::Gossip).samples,
        g.messages,
        "SimNet must time every gossip message"
    );
}

#[test]
fn long_queries_with_deep_lattice_are_thread_invariant() {
    // The intra-query parallel fan-out (plan/execute pipeline): long
    // queries (>= 6 distinct terms) at the deepest legal smax produce wide
    // multi-level lattices, so each level's probe batch genuinely fans out
    // over the pool. Outcomes — top-k score bits, lookup counts, postings
    // fetched, per-level profiles and the traffic meters — must be
    // bit-identical under RAYON_NUM_THREADS ∈ {1, default}.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(31337);
    // Long queries sampled from document prefixes: 6-8 distinct terms that
    // genuinely co-occur, so the walk reaches deep lattice levels instead
    // of dying at absent singles (same sampler as `bench_query`, so the
    // fan-out this test guards is the shape the bench measures).
    let queries: Vec<Vec<TermId>> = (0..24).map(|i| c.long_query(i * 23, 6 + i % 3)).collect();
    let run = || {
        let network = HdkNetwork::build(
            &c,
            &partition_documents(c.len(), 16, 5),
            HdkConfig {
                dfmax: 12,
                smax: 4, // deepest legal lattice (MAX_KEY_SIZE)
                ff: u64::MAX,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        let mut outcomes = Vec::new();
        let mut profiles = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let (out, profile) = network.query_profiled(PeerId(i as u64 % 16), q, 20);
            assert!(
                u64::from(out.lookups) <= network.max_lookups(q.len()),
                "lookups exceed the lattice bound"
            );
            outcomes.push((
                out.results
                    .iter()
                    .map(|r| (r.doc, r.score.to_bits()))
                    .collect::<Vec<_>>(),
                out.lookups,
                out.postings_fetched,
            ));
            profiles.push(profile);
        }
        (outcomes, profiles, network.snapshot())
    };

    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = run();
    if let Some(v) = prev {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }

    // At least one query must actually exercise a deep multi-level walk,
    // otherwise this test is vacuous.
    assert!(
        serial.1.iter().any(|p| p.levels.len() >= 3),
        "no query reached level 3 — lattice too shallow to test fan-out"
    );
    assert!(
        serial.1.iter().any(|p| p.fanout_at(2) >= 8),
        "level-2 fan-out never widened beyond 8 probes"
    );
    assert_eq!(serial.0, parallel.0, "query outcomes diverged (score bits)");
    assert_eq!(serial.1, parallel.1, "per-level profiles diverged");
    assert_eq!(serial.2, parallel.2, "traffic snapshot diverged");
}

#[test]
fn skewed_batch_reads_with_spread_and_promotion_are_thread_invariant() {
    // The read-scaling path: a Zipf-skewed replay batch at R=3 exercises
    // the replica load spread (each probe's serving holder is picked by
    // `hash(query_id, key)`, where the query id salts on *batch position*
    // — a pure input attribute, never a scheduling artifact), then a
    // hot-key rebalance pass promotes the stream's head keys from the
    // deterministic hit-counter snapshot, then the identical batch runs
    // again over the widened replica sets. Everything observable — top-k
    // score bits, promotion stats, traffic counters including the
    // HotReplicate category and the per-peer served-lookup loads — must
    // be bit-identical under RAYON_NUM_THREADS ∈ {1, default}.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(1212);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    // The corpus crate's shared Zipf sampler: a seeded, heavily skewed
    // replay schedule, so identical queries repeat at many batch
    // positions (each repeat salting a different replica pick).
    let replay = log.zipf_replay(1.2, 160, 77);
    let run = || {
        let network = HdkNetwork::build(
            &c,
            &partition_documents(c.len(), 16, 13),
            HdkConfig {
                dfmax: 15,
                ff: 3_000,
                replication: 3,
                hot_threshold: 6,
                hot_extra: 2,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        let (mut indexer, queries) = network.into_services();
        let batch: Vec<(PeerId, &[TermId])> = replay
            .iter()
            .enumerate()
            .map(|(pos, &qi)| (PeerId(pos as u64 % 16), log.queries[qi].terms.as_slice()))
            .collect();
        let mut topk: Vec<Vec<SearchResult>> = queries
            .query_batch(&batch, 20)
            .into_iter()
            .map(|o| o.results)
            .collect();
        let stats = indexer.rebalance_hot();
        topk.extend(
            queries
                .query_batch(&batch, 20)
                .into_iter()
                .map(|o| o.results),
        );
        (topk, stats, queries.snapshot())
    };

    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = run();
    if let Some(v) = prev {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }

    assert_eq!(serial.0, parallel.0, "query top-k diverged");
    assert_eq!(serial.1, parallel.1, "promotion stats diverged");
    assert_eq!(serial.2, parallel.2, "traffic snapshot diverged");
    // Non-vacuity: the skewed stream promoted hot keys, copies moved in
    // the HotReplicate category, and the serve load genuinely spread —
    // several peers shared each hot key's reads.
    assert!(serial.1.promoted > 0, "no keys crossed the hot threshold");
    assert!(serial.2.kind(MsgKind::HotReplicate).messages > 0);
    assert!(
        serial.2.served_by_peer.iter().filter(|&&s| s > 0).count() >= 8,
        "served load concentrated on too few peers"
    );
}

#[test]
fn simnet_query_batch_is_thread_invariant() {
    // The simulated network models time from per-message attributes only —
    // never from scheduling — so a SimNet build + parallel query batch must
    // be bit-identical under RAYON_NUM_THREADS ∈ {1, default}: outcomes,
    // traffic counts, *and* the full latency histograms (samples, totals,
    // maxima, buckets, retries) plus the virtual clock.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(777);
    let sim = SimNetConfig {
        seed: 99,
        hop_ns: 300_000,
        jitter_ns: 100_000,
        ns_per_byte: 10,
        drop_prob: 0.1,
        timeout_ns: 2_000_000,
    };
    let run = || {
        let network = HdkNetwork::build_with(
            &c,
            &partition_documents(c.len(), 16, 13),
            HdkConfig {
                dfmax: 15,
                ff: 3_000,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
            BackendConfig::SimNet(sim),
        );
        let log = QueryLog::generate(
            &c,
            &QueryLogConfig {
                num_queries: 40,
                ..QueryLogConfig::default()
            },
        );
        let batch: Vec<(PeerId, &[TermId])> = log
            .queries
            .iter()
            .map(|q| (PeerId(u64::from(q.id) % 16), q.terms.as_slice()))
            .collect();
        let queries = network.query_service();
        let outcomes: Vec<(Vec<SearchResult>, u32, u64)> = queries
            .query_batch(&batch, 20)
            .into_iter()
            .map(|o| (o.results, o.lookups, o.postings_fetched))
            .collect();
        (outcomes, queries.snapshot(), queries.virtual_time_ns())
    };

    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::remove_var("RAYON_NUM_THREADS"); // default pool size
    let parallel = run();
    if let Some(v) = prev {
        std::env::set_var("RAYON_NUM_THREADS", v);
    }

    assert_eq!(serial.0, parallel.0, "query outcomes diverged");
    // Full snapshot equality covers counts AND every latency histogram.
    assert_eq!(serial.1, parallel.1, "traffic/latency snapshot diverged");
    assert_eq!(serial.2, parallel.2, "virtual clock diverged");
    // Non-vacuity: the simulated network actually took time and lost
    // packets.
    let h = serial.1.latency(MsgKind::QueryResponse);
    assert!(h.samples > 0 && h.total_ns > 0);
    assert!(
        serial.1.latency(MsgKind::IndexInsert).retries > 0,
        "10% drop over thousands of inserts must retransmit at least once"
    );
    assert!(serial.2 > 0);
}

#[test]
fn incremental_additions_are_deterministic_run_to_run() {
    // Regression test for the nondeterministic `add_documents` dispatch:
    // grouped additions used to hop through a HashMap, so per-peer insert
    // order (and with it traffic attribution) varied run to run.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = collection(4711);
    let build = || {
        let partitions = partition_documents(500, 6, 3);
        let prefix = c.prefix(500);
        let mut network = HdkNetwork::build(
            &prefix,
            &partitions,
            HdkConfig {
                dfmax: 12,
                ff: u64::MAX,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        );
        // Late documents arrive interleaved over peers in "arrival" order —
        // deliberately not grouped, exercising the dispatch path.
        let additions: Vec<(PeerId, Document)> = (500..c.len())
            .map(|i| {
                let doc = c.doc(DocId(i as u32)).clone();
                (PeerId((i as u64 * 7 + 3) % 6), doc)
            })
            .collect();
        network.add_documents(additions);
        network
    };
    let a = build();
    let b = build();
    assert_eq!(a.build_report().counts, b.build_report().counts);
    assert_eq!(
        a.build_report().stored_per_peer,
        b.build_report().stored_per_peer
    );
    // The strong property: *traffic* (including per-peer attribution and
    // message counts) is identical, not just the final index.
    assert_eq!(a.snapshot(), b.snapshot());
}
