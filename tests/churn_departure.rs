//! Peer-departure churn: the other half of the growth story. Graceful
//! departures hand their index copies over and lose nothing at any
//! replication factor; crashes destroy copies — fatal for solely-held
//! entries at `R = 1`, repairable from surviving replicas at `R ≥ 2` —
//! and the acceptance contract is that with `R = 2`, failing any single
//! peer loses no indexed content: post-repair queries return bit-identical
//! top-k (f64 score bits) to a never-failed network.

use p2p_hdk::prelude::*;

fn config(replication: usize) -> HdkConfig {
    HdkConfig {
        dfmax: 12,
        ff: u64::MAX, // freeze exclusion differences out of the comparison
        replication,
        ..HdkConfig::default()
    }
}

fn collection(num_docs: usize) -> Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs,
        vocab_size: 2_500,
        avg_doc_len: 45,
        num_topics: 25,
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn digest(out: &QueryOutcome) -> Vec<(u32, u64)> {
    out.results
        .iter()
        .map(|r| (r.doc.0, r.score.to_bits()))
        .collect()
}

#[test]
fn failing_any_single_peer_at_r2_loses_no_content() {
    // The acceptance criterion, quantified over EVERY possible victim:
    // build the same 6-peer R=2 network, fail one peer, repair, and
    // compare every query's top-k score bits against the never-failed
    // build.
    let c = collection(240);
    let parts = partition_documents(c.len(), 6, 17);
    let reference = HdkNetwork::build(&c, &parts, config(2), OverlayKind::PGrid);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    let expected: Vec<Vec<(u32, u64)>> = log
        .queries
        .iter()
        .map(|q| digest(&reference.query(PeerId(0), &q.terms, 20)))
        .collect();

    for victim in 0..6u64 {
        let mut live = HdkNetwork::build(&c, &parts, config(2), OverlayKind::PGrid);
        let keys_before = live.index().index_counts().total_keys();
        let loss = live.fail_peers(vec![PeerId(victim)]);
        assert_eq!(loss.keys_lost, 0, "R=2 lost keys when peer{victim} died");
        assert!(loss.keys_degraded > 0, "peer{victim} held no replicas?");

        // Degradation window: content is already fully served via
        // failover, before any repair runs.
        let survivor = PeerId((victim + 1) % 6);
        for (q, want) in log.queries.iter().zip(&expected) {
            let got = live.query(survivor, &q.terms, 20);
            assert_eq!(
                &digest(&got),
                want,
                "degraded query diverged: {:?}",
                q.terms
            );
        }

        // Repair restores full redundancy with metered Repair traffic.
        let before = live.snapshot();
        let repair = live.repair();
        assert_eq!(repair.copies, loss.keys_degraded);
        assert!(repair.postings > 0 && repair.bytes > 0);
        let d = live.snapshot().since(&before);
        assert_eq!(d.kind(MsgKind::Repair).messages, repair.copies);
        assert_eq!(d.kind(MsgKind::Repair).postings, repair.postings);

        // Post-repair: bit-identical top-k to the never-failed network,
        // and the index content is intact.
        assert_eq!(live.index().index_counts().total_keys(), keys_before);
        for (q, want) in log.queries.iter().zip(&expected) {
            let got = live.query(survivor, &q.terms, 20);
            assert_eq!(
                &digest(&got),
                want,
                "post-repair query diverged: {:?}",
                q.terms
            );
        }

        // A second repair is a no-op, and the network now survives the
        // next single crash too.
        assert_eq!(live.repair(), RepairStats::default());
        let second = live.fail_peers(vec![PeerId((victim + 2) % 6)]);
        assert_eq!(second.keys_lost, 0, "redundancy was not fully restored");
    }
}

#[test]
fn graceful_leave_mirrors_join_and_preserves_content_at_r1() {
    // Even without replication, a graceful departure loses nothing: the
    // handover wave re-homes every copy. The shrunken network must answer
    // every query bit-identically to a static build of the same corpus.
    let c = collection(300);
    let reference = HdkNetwork::build(
        &c,
        &partition_documents(c.len(), 3, 7),
        config(1),
        OverlayKind::PGrid,
    );
    let mut live = HdkNetwork::build(
        &c,
        &partition_documents(c.len(), 6, 31),
        config(1),
        OverlayKind::PGrid,
    );
    let before = live.snapshot();
    let stats = live.leave_peers(vec![PeerId(1), PeerId(4)]);
    assert_eq!(stats.len(), 2);
    assert!(
        stats.iter().all(|s| s.keys_moved > 0),
        "each leaver hands over its fraction"
    );
    // The handover is maintenance traffic: one aggregate message per
    // leaver, nothing metered as indexing or retrieval.
    let d = live.snapshot().since(&before);
    assert_eq!(d.kind(MsgKind::Maintenance).messages, 2);
    assert_eq!(
        d.kind(MsgKind::Maintenance).postings,
        stats.iter().map(|s| s.postings_moved).sum::<u64>()
    );
    assert_eq!(d.kind(MsgKind::IndexInsert).messages, 0);

    // Index content identical to the static build (placement differs).
    assert_eq!(
        live.index().index_counts(),
        reference.index().index_counts()
    );
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    for q in &log.queries {
        let a = live.query(PeerId(0), &q.terms, 20);
        let b = reference.query(PeerId(0), &q.terms, 20);
        assert_eq!(a.results, b.results, "diverged for {:?}", q.terms);
    }
}

#[test]
fn r1_crash_loses_content_and_repair_cannot_resurrect_it() {
    // The negative control: without replication a crash is fatal for the
    // victim's fraction — the damage report says so, lookups miss, and
    // repair (which copies from survivors) has nothing to copy from.
    let c = collection(200);
    let mut live = HdkNetwork::build(
        &c,
        &partition_documents(c.len(), 4, 11),
        config(1),
        OverlayKind::PGrid,
    );
    let keys_before = live.index().index_counts().total_keys();
    let loss = live.fail_peers(vec![PeerId(2)]);
    assert!(loss.keys_lost > 0, "the victim held part of the index");
    assert_eq!(loss.keys_degraded, 0, "R=1 has no degraded survivors");
    assert_eq!(
        live.index().index_counts().total_keys() + loss.keys_lost,
        keys_before
    );
    assert_eq!(live.repair(), RepairStats::default(), "nothing to repair");
    assert_eq!(
        live.index().index_counts().total_keys() + loss.keys_lost,
        keys_before,
        "repair resurrected lost entries?"
    );
}

#[test]
fn departed_network_keeps_growing_correctly() {
    // Churn in both directions around one live network: grow, shrink
    // gracefully, crash + repair, grow again — final content must match a
    // static build over the full corpus (the collection is an input; churn
    // changes who hosts and serves, not what is indexed).
    let c = collection(360);
    let reference = HdkNetwork::build(
        &c,
        &partition_documents(c.len(), 5, 3),
        config(2),
        OverlayKind::PGrid,
    );

    let mut live = HdkNetwork::build(
        &c.prefix(180),
        &partition_documents(180, 4, 13),
        config(2),
        OverlayKind::PGrid,
    );
    // Grow: two peers join with the next 120 documents.
    let docs =
        |lo: usize, hi: usize| -> Vec<Document> { (lo..hi).map(|i| c.docs()[i].clone()).collect() };
    live.join_peers(vec![
        (PeerId(100), docs(180, 240)),
        (PeerId(101), docs(240, 300)),
    ]);
    // Shrink: one founder leaves gracefully.
    live.leave_peers(vec![PeerId(0)]);
    // Crash another founder, then repair.
    let loss = live.fail_peers(vec![PeerId(2)]);
    assert_eq!(loss.keys_lost, 0, "R=2 must survive the single crash");
    assert!(live.repair().copies > 0);
    // Grow again: the last 60 documents arrive at a fresh peer.
    live.join_peers(vec![(PeerId(102), docs(300, 360))]);

    assert_eq!(live.num_docs(), reference.num_docs());
    assert_eq!(
        live.index().index_counts(),
        reference.index().index_counts()
    );
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    for q in &log.queries {
        let a = live.query(PeerId(101), &q.terms, 20);
        let b = reference.query(PeerId(0), &q.terms, 20);
        assert_eq!(a.results, b.results, "diverged for {:?}", q.terms);
        assert_eq!(a.postings_fetched, b.postings_fetched);
    }
}

#[test]
fn simnet_times_failover_and_repair() {
    // Over the simulated network: dead-peer failover costs timeouts (and
    // retransmitted bytes), repair traffic is timed in its own category,
    // and none of it changes the logical counts' cross-backend story.
    let c = collection(200);
    let sim = SimNetConfig {
        seed: 77,
        hop_ns: 200_000,
        jitter_ns: 50_000,
        ns_per_byte: 4,
        drop_prob: 0.0,
        timeout_ns: 10_000_000,
    };
    let parts = partition_documents(c.len(), 5, 9);
    let mut live = HdkNetwork::build_with(
        &c,
        &parts,
        config(2),
        OverlayKind::PGrid,
        BackendConfig::SimNet(sim),
    );
    let loss = live.fail_peers(vec![PeerId(1)]);
    assert_eq!(loss.keys_lost, 0);

    // Degraded queries: failover to the dead primary's successor charges
    // the retransmission timeout.
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 20,
            ..QueryLogConfig::default()
        },
    );
    let before = live.snapshot();
    for q in &log.queries {
        let _ = live.query(PeerId(0), &q.terms, 20);
    }
    let during = live.snapshot().since(&before);
    let lookups = during.latency(MsgKind::QueryLookup);
    assert!(lookups.samples > 0);
    assert!(
        lookups.retries > 0,
        "no lookup ever hit the dead primary first?"
    );
    assert!(
        lookups.retransmission_bytes > 0,
        "timed-out attempts re-transmit their payload"
    );
    assert!(
        lookups.max_ns >= sim.timeout_ns,
        "a dead-peer timeout must dominate at least one lookup"
    );

    // Repair is timed under its own kind, one sample per copy.
    let before = live.snapshot();
    let stats = live.repair();
    assert!(stats.copies > 0);
    let d = live.snapshot().since(&before);
    let h = d.latency(MsgKind::Repair);
    assert_eq!(h.samples, stats.copies);
    assert!(h.total_ns > 0);
}
