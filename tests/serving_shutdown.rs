//! Graceful shutdown and lossless restart of segment-backed peer
//! processes.
//!
//! The scenario the serving tier promises operators: peers hosting
//! durable segment stores receive `Shutdown` (drain + seal the hot
//! tier), exit cleanly, restart over the same directories, and after a
//! `Restart` recovery wave the index answers queries bit-identically to
//! its pre-shutdown self — zero keys, copies, or postings lost.

use hdk_core::{
    BackendConfig, HdkConfig, HdkNetwork, OverlayKind, QueryService, WireRequest, WireResponse,
};
use hdk_corpus::{partition_documents, Collection, CollectionGenerator, GeneratorConfig};
use hdk_p2p::wire::{read_frame, write_frame};
use hdk_p2p::PeerId;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const NPROCS: usize = 3;
const PEERS: usize = 6;
const DFMAX: u32 = 10;
const DOCS: usize = 180;
/// Tiny hot budget: most entries seal to disk *during* the build, so
/// recovery replays real segment logs, not just the shutdown flush.
const HOT_BYTES: &str = "segment:8192";

/// Kills whatever is left of the fleet when an assertion panics.
struct Fleet(Vec<Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns one durable `hdk-peer` over `dir`, returning the child and
/// the address it actually bound.
fn spawn_peer(proc_index: usize, listen: &str, dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hdk-peer"))
        .args([
            "--listen",
            listen,
            "--nprocs",
            &NPROCS.to_string(),
            "--proc",
            &proc_index.to_string(),
            "--peers",
            &PEERS.to_string(),
            "--dfmax",
            &DFMAX.to_string(),
            "--store-dir",
        ])
        .arg(dir)
        .env("HDK_STORE", HOT_BYTES)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hdk-peer");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufRead::read_line(&mut std::io::BufReader::new(stdout), &mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("unexpected peer banner {line:?}"))
        .to_string();
    (child, addr)
}

/// Asks one peer process to shut down gracefully over a raw socket and
/// expects the acknowledgement frame back before the process exits.
fn request_shutdown(addr: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
    write_frame(&mut stream, &WireRequest::Shutdown.encode()).expect("send Shutdown");
    let reply = read_frame(&mut stream).expect("read shutdown ack");
    let reply = WireResponse::decode(&reply).expect("decode shutdown ack");
    assert!(
        matches!(reply, WireResponse::ShuttingDown),
        "expected ShuttingDown, got {reply:?}"
    );
}

fn corpus() -> Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs: DOCS,
        vocab_size: 2_500,
        seed: 11,
        ..GeneratorConfig::default()
    })
    .generate()
}

/// Every query's full observable outcome: lookup count, postings
/// fetched, and the top-k (doc, f64 score bits) in rank order.
type Outcome = (u32, u64, Vec<(u32, u64)>);

fn outcomes(service: &QueryService, collection: &Collection) -> Vec<Outcome> {
    (0..12)
        .map(|i| {
            let terms = collection.long_query(i * 29, 3 + i % 2);
            let outcome = service.query(PeerId((i % PEERS) as u64), &terms, 10);
            (
                outcome.lookups,
                outcome.postings_fetched,
                outcome
                    .results
                    .iter()
                    .map(|r| (r.doc.0, r.score.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn graceful_shutdown_then_restart_is_lossless() {
    let dirs: Vec<tempfile::TempDir> = (0..NPROCS)
        .map(|_| tempfile::tempdir().expect("create store dir"))
        .collect();

    let mut fleet = Fleet(Vec::new());
    let mut addrs = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        let (child, addr) = spawn_peer(i, "127.0.0.1:0", dir.path());
        fleet.0.push(child);
        addrs.push(addr);
    }

    let collection = corpus();
    let partitions = partition_documents(collection.len(), PEERS, 42);
    let config = HdkConfig {
        dfmax: DFMAX,
        ..HdkConfig::default()
    };
    let mut network = HdkNetwork::build_with(
        &collection,
        &partitions,
        config,
        OverlayKind::PGrid,
        BackendConfig::Tcp {
            addrs: addrs.clone(),
        },
    );
    let service = network.query_service();

    let counts_before = service.index().index_counts();
    assert!(
        counts_before.total_keys() > 0,
        "trivial corpus: nothing indexed"
    );
    let stored_before = service.index().stored_postings_per_peer();
    let before = outcomes(&service, &collection);
    assert!(
        service.index().sealed_segment_bytes() > 0,
        "hot budget {HOT_BYTES} must have sealed entries to disk during the build"
    );

    // --- Graceful shutdown: ack frame, then exit status 0. ---
    for (child, addr) in fleet.0.iter_mut().zip(&addrs) {
        request_shutdown(addr);
        let status = child.wait().expect("reap peer");
        assert!(
            status.success(),
            "graceful shutdown must exit 0, got {status}"
        );
    }
    fleet.0.clear();

    // --- Restart over the same directories and addresses. ---
    for (i, (dir, addr)) in dirs.iter().zip(&addrs).enumerate() {
        let (child, bound) = spawn_peer(i, addr, dir.path());
        assert_eq!(&bound, addr, "peer {i} must rebind its old address");
        fleet.0.push(child);
    }

    // Fresh processes hold open segment logs but empty in-memory
    // stripes: nothing is resident until the recovery wave replays.
    assert_eq!(
        service.index().index_counts().total_keys(),
        0,
        "recovery must be driven by Restart, not implicit at startup"
    );

    let (recovery, _repair) =
        network.restart_peers(&(0..PEERS as u64).map(PeerId).collect::<Vec<_>>());
    assert!(recovery.frames_replayed > 0, "no segment frames replayed");
    assert!(recovery.postings_recovered > 0, "no postings recovered");
    assert_eq!(recovery.keys_lost, 0, "lossless restart lost keys");
    assert_eq!(recovery.copies_lost, 0, "lossless restart lost copies");
    assert_eq!(recovery.postings_lost, 0, "lossless restart lost postings");

    // --- The recovered index is bit-identical to its old self. ---
    assert_eq!(
        service.index().index_counts(),
        counts_before,
        "index counts diverge after restart"
    );
    assert_eq!(
        service.index().stored_postings_per_peer(),
        stored_before,
        "per-peer stored postings diverge after restart"
    );
    let after = outcomes(&service, &collection);
    assert_eq!(before, after, "query outcomes diverge after restart");
}
