//! Peer-join growth: a peer joining a live network with its own documents
//! must leave the system indistinguishable — in index *content* and query
//! answers — from a network built statically over the same enlarged
//! collection. (Placement of index fractions differs; content must not.)

use p2p_hdk::prelude::*;

fn config() -> HdkConfig {
    HdkConfig {
        dfmax: 12,
        ff: u64::MAX, // freeze exclusion differences out of the comparison
        ..HdkConfig::default()
    }
}

#[test]
fn joined_peer_network_matches_static_build() {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 360,
        vocab_size: 2_500,
        avg_doc_len: 45,
        num_topics: 25,
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate();

    // Static reference: 4 peers, whole collection.
    let static_parts = partition_documents(collection.len(), 4, 31);
    let reference = HdkNetwork::build(&collection, &static_parts, config(), OverlayKind::PGrid);

    // Live network: 3 peers over the first 270 docs, then a 4th peer joins
    // carrying the remaining 90.
    let split = 270;
    let old_parts = partition_documents(split, 3, 77);
    let mut live = HdkNetwork::build(
        &collection.prefix(split),
        &old_parts,
        config(),
        OverlayKind::PGrid,
    );
    let new_docs: Vec<Document> = (split..collection.len())
        .map(|i| collection.docs()[i].clone())
        .collect();
    let migration = live.join_peer(PeerId(900), new_docs);
    assert!(migration.keys_moved > 0, "join must take over index keys");
    assert_eq!(live.num_peers(), 4);
    assert_eq!(live.num_docs(), reference.num_docs());

    // Index content identical despite different document placement and
    // overlay shape.
    assert_eq!(
        live.index().index_counts(),
        reference.index().index_counts()
    );

    // Query answers identical.
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: 40,
            ..QueryLogConfig::default()
        },
    );
    for q in &log.queries {
        let a = live.query(PeerId(900), &q.terms, 20);
        let b = reference.query(PeerId(0), &q.terms, 20);
        assert_eq!(a.results, b.results, "diverged for {:?}", q.terms);
        assert_eq!(a.postings_fetched, b.postings_fetched);
    }

    // Migration is maintenance, not indexing cost: inserted postings per
    // peer reflect only real indexing work.
    let snap = live.snapshot();
    assert_eq!(
        snap.kind(MsgKind::Maintenance).postings,
        migration.postings_moved
    );
}

#[test]
fn bulk_join_matches_sequential_content_with_less_traffic() {
    // `join_peers` admits N peers in one call: N overlay migrations, then
    // ONE incremental indexing session over all their documents. The final
    // index content must match both the static build and the sequential
    // one-peer-at-a-time joins, while the amortized re-announce sweep
    // moves strictly fewer indexing messages than the sequential joins.
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 300,
        vocab_size: 2_200,
        avg_doc_len: 45,
        num_topics: 22,
        topic_vocab: 45,
        ..GeneratorConfig::default()
    })
    .generate();
    let reference = HdkNetwork::build(
        &collection,
        &partition_documents(collection.len(), 6, 7),
        config(),
        OverlayKind::PGrid,
    );

    let boot = |overlay| {
        HdkNetwork::build(
            &collection.prefix(150),
            &partition_documents(150, 3, 7),
            config(),
            overlay,
        )
    };
    let joins = |base: u64| -> Vec<(PeerId, Vec<Document>)> {
        (0..3u64)
            .map(|j| {
                let lo = 150 + j as usize * 50;
                let docs: Vec<Document> = (lo..lo + 50)
                    .map(|i| collection.docs()[i].clone())
                    .collect();
                (PeerId(base + j), docs)
            })
            .collect()
    };

    // Sequential baseline: three separate join sessions.
    let mut sequential = boot(OverlayKind::PGrid);
    for (peer, docs) in joins(700) {
        sequential.index_service().join_peer(peer, docs);
    }

    // Bulk: one call, one session.
    let mut bulk = boot(OverlayKind::PGrid);
    let migrations = bulk.index_service().join_peers(joins(700));
    assert_eq!(migrations.len(), 3, "one migration report per join");
    assert!(
        migrations.iter().any(|m| m.keys_moved > 0),
        "joins must take over index keys"
    );

    // Identical final content, three ways.
    assert_eq!(bulk.num_peers(), 6);
    assert_eq!(
        bulk.index().index_counts(),
        reference.index().index_counts()
    );
    assert_eq!(
        bulk.index().index_counts(),
        sequential.index().index_counts()
    );

    // Query answers identical to the static build.
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: 25,
            ..QueryLogConfig::default()
        },
    );
    let bulk_queries = bulk.query_service();
    for q in &log.queries {
        let a = bulk_queries.query(PeerId(700), &q.terms, 20);
        let b = reference.query(PeerId(0), &q.terms, 20);
        assert_eq!(a.results, b.results, "diverged for {:?}", q.terms);
    }

    // The amortization claim: one shared session moves fewer indexing
    // messages (inserts + notifications) than three separate sessions.
    let cost = |n: &HdkNetwork| {
        let s = n.snapshot();
        s.kind(MsgKind::IndexInsert).messages + s.kind(MsgKind::IndexNotify).messages
    };
    // Subtract the query traffic-free baseline: only indexing categories
    // are compared, and queries above only touched `bulk`.
    assert!(
        cost(&bulk) < cost(&sequential),
        "bulk join must amortize: {} messages vs {} sequential",
        cost(&bulk),
        cost(&sequential)
    );
}

#[test]
fn bulk_join_of_one_equals_single_join() {
    // The single-join path is the bulk path with one element; their
    // observable effects must be identical.
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 160,
        vocab_size: 1_500,
        avg_doc_len: 40,
        num_topics: 15,
        topic_vocab: 40,
        ..GeneratorConfig::default()
    })
    .generate();
    let boot = || {
        HdkNetwork::build(
            &collection.prefix(120),
            &partition_documents(120, 2, 5),
            config(),
            OverlayKind::Chord,
        )
    };
    let docs: Vec<Document> = (120..160).map(|i| collection.docs()[i].clone()).collect();

    let mut single = boot();
    let m1 = single.join_peer(PeerId(42), docs.clone());
    let mut bulk = boot();
    let m2 = bulk.join_peers(vec![(PeerId(42), docs)]);
    assert_eq!(vec![m1], m2);
    assert_eq!(single.index().index_counts(), bulk.index().index_counts());
    assert_eq!(single.snapshot(), bulk.snapshot(), "traffic must match");
}

#[test]
fn several_peers_join_in_sequence() {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 240,
        vocab_size: 2_000,
        avg_doc_len: 40,
        num_topics: 20,
        topic_vocab: 40,
        ..GeneratorConfig::default()
    })
    .generate();
    let reference = HdkNetwork::build(
        &collection,
        &partition_documents(collection.len(), 5, 3),
        config(),
        OverlayKind::Chord,
    );

    // Start with 2 peers on 120 docs, then 3 joins of 40 docs each.
    let mut live = HdkNetwork::build(
        &collection.prefix(120),
        &partition_documents(120, 2, 3),
        config(),
        OverlayKind::Chord,
    );
    for (j, lo) in [(0u64, 120usize), (1, 160), (2, 200)] {
        let docs: Vec<Document> = (lo..lo + 40)
            .map(|i| collection.docs()[i].clone())
            .collect();
        live.join_peer(PeerId(1000 + j), docs);
    }
    assert_eq!(live.num_peers(), 5);
    assert_eq!(
        live.index().index_counts(),
        reference.index().index_counts()
    );
}
