//! Query-cache integration: cached retrieval returns identical results at
//! near-zero repeat cost, and never serves stale data across index updates.

use p2p_hdk::core::QueryCache;
use p2p_hdk::prelude::*;

fn setup() -> (Collection, HdkNetwork, QueryLog) {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 400,
        vocab_size: 3_000,
        avg_doc_len: 50,
        num_topics: 30,
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), 4, 13);
    let network = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax: 15,
            ff: 2_000,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    );
    let log = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    (collection, network, log)
}

#[test]
fn cached_queries_match_uncached_and_save_traffic() {
    let (_, network, log) = setup();
    let cache = QueryCache::new(4_096);
    // First pass: populate (misses travel, results must match uncached).
    for q in &log.queries {
        let plain = network.query(PeerId(0), &q.terms, 20);
        let cached = network.query_cached(PeerId(0), &q.terms, 20, &cache);
        assert_eq!(plain.results, cached.results, "results diverged");
    }
    // Second pass: every key is hot; repeat queries are free.
    let before = network.snapshot();
    for q in &log.queries {
        let out = network.query_cached(PeerId(0), &q.terms, 20, &cache);
        assert_eq!(out.postings_fetched, 0, "hot query fetched postings");
        assert_eq!(out.lookups, 0, "hot query issued lookups");
        assert!(!out.results.is_empty());
    }
    let moved = network.snapshot().since(&before);
    assert_eq!(moved.kind(MsgKind::QueryLookup).messages, 0);
    assert_eq!(moved.kind(MsgKind::QueryResponse).postings, 0);
    let stats = cache.stats();
    assert!(stats.hits > 0 && stats.postings_saved > 0);
}

#[test]
fn cache_invalidates_on_index_update() {
    let (collection, mut network, log) = setup();
    let cache = QueryCache::new(4_096);
    let q = &log.queries[0];
    let _ = network.query_cached(PeerId(0), &q.terms, 20, &cache);

    // Index grows: a new document containing exactly the query terms.
    let new_doc = Document {
        id: DocId(collection.len() as u32),
        tokens: q.terms.repeat(10),
    };
    network.add_documents(vec![(PeerId(1), new_doc)]);

    // The cached entry is stale; the epoch bump forces a refetch and the
    // fresh result must contain the new document.
    let out = network.query_cached(PeerId(0), &q.terms, collection.len() + 1, &cache);
    assert!(out.lookups > 0, "stale cache served after index update");
    assert!(
        out.results
            .iter()
            .any(|r| r.doc.0 == collection.len() as u32),
        "new document missing from post-update results"
    );
}
