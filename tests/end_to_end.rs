//! End-to-end integration: raw text → analysis → distributed HDK index →
//! free-text queries → ranked results, checked against the centralized
//! BM25 engine and the paper's traffic bounds.

use p2p_hdk::prelude::*;

/// Builds a deterministic pseudo-text collection through the *text*
/// pipeline (tokenizer + stop words + stemmer), not the corpus generator,
/// so this test exercises the whole stack the way a real deployment would.
fn analyzed_collection() -> (Analyzer, Collection) {
    let subjects = [
        "peer", "network", "index", "query", "document", "ranking", "key", "posting", "window",
        "term", "overlay", "routing",
    ];
    let verbs = [
        "stores",
        "retrieves",
        "ranks",
        "distributes",
        "maintains",
        "builds",
    ];
    let mut analyzer = Analyzer::new();
    let mut docs = Vec::new();
    for i in 0..240usize {
        // Each document repeats a small themed vocabulary, so terms
        // co-occur in windows and multi-term keys arise.
        let a = subjects[i % subjects.len()];
        let b = subjects[(i / 3 + 1) % subjects.len()];
        let v = verbs[i % verbs.len()];
        let text = format!(
            "The {a} {v} the {b} and the {a} also {v} many {b} items; \
             without the {a}, no {b} would ever be {v} here. \
             Some filler sentences about completely different things number {i} follow."
        );
        let analyzed = analyzer.analyze(&text);
        docs.push(Document {
            id: DocId(i as u32),
            tokens: analyzed.tokens,
        });
    }
    let vocab = analyzer.vocab().clone();
    (analyzer, Collection::new(docs, vocab))
}

#[test]
fn full_stack_text_to_results() {
    let (analyzer, collection) = analyzed_collection();
    let partitions = partition_documents(collection.len(), 6, 17);
    let network = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax: 15,
            ff: 10_000,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    );
    let central = CentralizedEngine::build(&collection);

    for query_text in [
        "peer network",
        "ranking documents",
        "posting index",
        "query routing overlay",
    ] {
        let terms = analyzer.analyze_query(query_text);
        assert!(!terms.is_empty(), "query {query_text:?} lost all terms");
        let outcome = network.query(PeerId(1), &terms, 20);
        let reference = central.search(&terms, 20);
        assert!(!outcome.results.is_empty(), "no results for {query_text:?}");
        assert!(!reference.is_empty());
        // Traffic bound: nk * DFmax.
        assert!(
            outcome.postings_fetched
                <= network.max_lookups(terms.len()) * u64::from(network.config().dfmax)
        );
        // Both engines agree at least partially on the top documents.
        let overlap = top_k_overlap(&outcome.results, &reference, 20);
        assert!(
            overlap >= 30.0,
            "overlap for {query_text:?} too low: {overlap}%"
        );
    }
}

#[test]
fn network_grows_with_bounded_per_peer_load() {
    // The paper's use case: collection growth is absorbed by adding peers
    // (constant documents per peer). The ST index per peer stays flat;
    // queries on HDK stay bounded.
    let docs_per_peer = 60;
    let full = CollectionGenerator::new(GeneratorConfig {
        num_docs: docs_per_peer * 8,
        vocab_size: 4_000,
        avg_doc_len: 50,
        num_topics: 30,
        topic_vocab: 60,
        ..GeneratorConfig::default()
    })
    .generate();
    let mut st_loads = Vec::new();
    for peers in [2usize, 4, 8] {
        let docs = docs_per_peer * peers;
        let collection = full.prefix(docs);
        let partitions = partition_documents(docs, peers, 5);
        let st = SingleTermNetwork::build(&collection, &partitions, OverlayKind::PGrid);
        st_loads.push(st.build_report().avg_stored_per_peer());
    }
    let (min, max) = (
        st_loads.iter().cloned().fold(f64::INFINITY, f64::min),
        st_loads.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max / min < 1.35,
        "ST per-peer load should stay ~constant: {st_loads:?}"
    );
}

#[test]
fn hdk_trades_indexing_for_retrieval() {
    // The paper's headline trade-off on one collection: HDK inserts more
    // postings than ST at indexing time but moves fewer at query time.
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 600,
        vocab_size: 5_000,
        avg_doc_len: 60,
        num_topics: 40,
        topic_vocab: 60,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), 4, 23);
    let st = SingleTermNetwork::build(&collection, &partitions, OverlayKind::PGrid);
    let hdk = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax: 20,
            ff: 2_500,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    );
    let st_report = st.build_report();
    let hdk_report = hdk.build_report();
    assert!(
        hdk_report.avg_inserted_per_peer() > st_report.avg_inserted_per_peer(),
        "HDK indexing must cost more: {} vs {}",
        hdk_report.avg_inserted_per_peer(),
        st_report.avg_inserted_per_peer()
    );

    let central = CentralizedEngine::build(&collection);
    let log = QueryLog::generate_filtered(
        &collection,
        &QueryLogConfig {
            num_queries: 50,
            min_hits: 5,
            ..QueryLogConfig::default()
        },
        |t| central.count_hits(t),
    );
    assert!(log.len() >= 30, "query generation starved: {}", log.len());
    let (mut st_traffic, mut hdk_traffic) = (0u64, 0u64);
    for q in &log.queries {
        st_traffic += st.query(PeerId(0), &q.terms, 20).postings_fetched;
        hdk_traffic += hdk.query(PeerId(0), &q.terms, 20).postings_fetched;
    }
    assert!(
        hdk_traffic < st_traffic,
        "HDK retrieval must be cheaper: {hdk_traffic} vs {st_traffic}"
    );
}

#[test]
fn traffic_accounting_is_complete() {
    // Every metered category is exercised by a build + query cycle, and
    // the per-peer attribution sums to the totals.
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 200,
        vocab_size: 2_000,
        avg_doc_len: 40,
        num_topics: 20,
        topic_vocab: 40,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), 4, 2);
    let network = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax: 10,
            ff: 1_500,
            ..HdkConfig::default()
        },
        OverlayKind::Chord,
    );
    let after_build = network.snapshot();
    assert!(after_build.kind(MsgKind::IndexInsert).messages > 0);
    assert!(after_build.kind(MsgKind::IndexNotify).messages > 0);
    assert_eq!(after_build.kind(MsgKind::QueryLookup).messages, 0);

    let q = vec![
        collection.docs()[0].tokens[0],
        collection.docs()[0].tokens[1],
    ];
    let _ = network.query(PeerId(2), &q, 10);
    let after_query = network.snapshot().since(&after_build);
    assert!(after_query.kind(MsgKind::QueryLookup).messages > 0);
    assert_eq!(after_query.kind(MsgKind::IndexInsert).messages, 0);
    // Retrieved postings attributed to the querying peer.
    assert_eq!(
        after_query.retrieved_by_peer.iter().sum::<u64>(),
        after_query.kind(MsgKind::QueryResponse).postings
    );
}
