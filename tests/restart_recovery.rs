//! Crash-restart recovery over the tiered segment store.
//!
//! The acceptance contract of the storage tier: a restart recovered from
//! the per-stripe segment logs plus **one** repair sweep reproduces the
//! static build bit for bit — build report, index counts, top-k f64 score
//! bits — and the tiered build itself is indistinguishable from the
//! in-memory default on every one of those axes. Log replay is host-local
//! disk I/O, so none of it shows up in the traffic meters; only the
//! closing repair sweep moves (metered) bytes.

use p2p_hdk::prelude::*;

fn collection(num_docs: usize) -> Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs,
        vocab_size: 2_500,
        avg_doc_len: 45,
        num_topics: 25,
        topic_vocab: 50,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn config(replication: usize, store: StoreConfig) -> HdkConfig {
    HdkConfig {
        dfmax: 12,
        ff: u64::MAX, // freeze exclusion differences out of the comparison
        replication,
        store,
        ..HdkConfig::default()
    }
}

fn digest(out: &QueryOutcome) -> Vec<(u32, u64)> {
    out.results
        .iter()
        .map(|r| (r.doc.0, r.score.to_bits()))
        .collect()
}

fn digests(network: &HdkNetwork, log: &QueryLog) -> Vec<Vec<(u32, u64)>> {
    log.queries
        .iter()
        .map(|q| digest(&network.query(PeerId(0), &q.terms, 20)))
        .collect()
}

#[test]
fn synced_segment_store_restarts_all_peers_from_logs_alone() {
    // Graceful path at R = 1: no replica to lean on, the logs must carry
    // everything. Build tiered under a tiny hot budget, compare against
    // the in-memory build bit for bit, sync, restart EVERY peer — log
    // replay alone must reproduce the index, with the closing repair
    // sweep finding nothing to do.
    let c = collection(240);
    let parts = partition_documents(c.len(), 4, 17);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );

    let reference = HdkNetwork::build(
        &c,
        &parts,
        config(1, StoreConfig::Memory),
        OverlayKind::PGrid,
    );
    let mut tiered = HdkNetwork::build(
        &c,
        &parts,
        config(1, StoreConfig::segment(1 << 16)),
        OverlayKind::PGrid,
    );

    // The tiered build is the in-memory build, bit for bit: report,
    // counts, traffic, top-k score bits. Tiering is host-local.
    assert_eq!(
        format!("{:?}", tiered.build_report()),
        format!("{:?}", reference.build_report())
    );
    assert_eq!(
        tiered.index().index_counts(),
        reference.index().index_counts()
    );
    assert!(tiered.snapshot().same_counts(&reference.snapshot()));
    let expected = digests(&reference, &log);
    assert_eq!(digests(&tiered, &log), expected);

    tiered.sync_storage();
    let peers: Vec<PeerId> = (0..4).map(PeerId).collect();
    let before = tiered.snapshot();
    let (recovery, repair) = tiered.restart_peers(&peers);

    assert!(recovery.frames_replayed > 0, "the logs were empty?");
    assert!(recovery.bytes_replayed > 0);
    assert_eq!(recovery.frames_discarded, 0, "clean logs discard nothing");
    assert_eq!(recovery.copies_lost, 0, "synced logs recover every copy");
    assert_eq!(recovery.keys_lost, 0);
    assert_eq!(repair, RepairStats::default(), "nothing left to repair");

    // Replay is host-local: zero messages of any kind were sent.
    let d = tiered.snapshot().since(&before);
    for kind in MsgKind::ALL {
        assert_eq!(d.kind(kind).messages, 0, "restart metered {kind:?}");
    }

    // And the restarted network still answers bit-identically.
    assert_eq!(
        tiered.index().index_counts(),
        reference.index().index_counts()
    );
    assert_eq!(digests(&tiered, &log), expected);
}

#[test]
fn unsynced_restart_is_a_crash_that_repair_heals_at_r2() {
    // Crash path: a generous hot budget keeps (nearly) everything
    // unsealed, so restarting one peer without a sync throws its hot
    // copies away. At R = 2 the surviving replicas cover every entry and
    // the restart's built-in repair sweep restores full redundancy.
    let c = collection(240);
    let parts = partition_documents(c.len(), 6, 11);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    let reference = HdkNetwork::build(
        &c,
        &parts,
        config(2, StoreConfig::Memory),
        OverlayKind::PGrid,
    );
    let expected = digests(&reference, &log);

    let mut tiered = HdkNetwork::build(
        &c,
        &parts,
        config(
            2,
            StoreConfig::segment(p2p_hdk::core::DEFAULT_SEGMENT_HOT_BYTES),
        ),
        OverlayKind::PGrid,
    );
    let keys_before = tiered.index().index_counts().total_keys();
    let before = tiered.snapshot();
    let (recovery, repair) = tiered.restart_peers(&[PeerId(2)]);

    assert!(recovery.copies_lost > 0, "peer 2 held nothing hot?");
    assert_eq!(recovery.keys_lost, 0, "R=2 must cover every hot copy");
    assert_eq!(
        repair.copies, recovery.copies_lost,
        "one repaired copy per lost copy"
    );
    // The repair sweep is real, metered traffic; the replay is not.
    let d = tiered.snapshot().since(&before);
    assert_eq!(d.kind(MsgKind::Repair).messages, repair.copies);
    assert_eq!(d.kind(MsgKind::Maintenance).messages, 0);

    assert_eq!(tiered.index().index_counts().total_keys(), keys_before);
    assert_eq!(digests(&tiered, &log), expected);
}

#[test]
fn checksums_catch_a_truncated_tail_and_repair_restores_it() {
    // Kill -9 mid-append: clip the tail of one peer's stripe log. The
    // frame checksum detects the damage, recovery discards the tail
    // (truncating the file to the last intact frame) and the repair sweep
    // re-copies whatever the broken log could no longer prove.
    let c = collection(240);
    let parts = partition_documents(c.len(), 4, 23);
    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 30,
            ..QueryLogConfig::default()
        },
    );
    let reference = HdkNetwork::build(
        &c,
        &parts,
        config(2, StoreConfig::Memory),
        OverlayKind::PGrid,
    );
    let expected = digests(&reference, &log);

    let dir = tempfile::tempdir().expect("scratch dir");
    let mut tiered = HdkNetwork::build(
        &c,
        &parts,
        config(
            2,
            StoreConfig::Segment {
                dir: Some(dir.path().to_path_buf()),
                hot_bytes: 1 << 15,
            },
        ),
        OverlayKind::PGrid,
    );
    tiered.sync_storage();

    // Clip the largest of peer 0's stripe logs mid-frame.
    let peer_dir = dir.path().join("peer-0");
    let victim_log = std::fs::read_dir(&peer_dir)
        .expect("peer 0 wrote segment logs")
        .map(|e| e.expect("dir entry").path())
        .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .expect("peer 0 has at least one stripe log");
    let len = std::fs::metadata(&victim_log).expect("stat").len();
    assert!(len > 3, "picked an empty log");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&victim_log)
        .expect("open log")
        .set_len(len - 3)
        .expect("clip tail");

    let (recovery, repair) = tiered.restart_peers(&[PeerId(0)]);
    assert!(
        recovery.frames_discarded > 0,
        "the clipped frame went unnoticed"
    );
    assert!(recovery.frames_replayed > 0, "intact prefix still replays");
    assert!(
        recovery.copies_lost > 0,
        "the clipped frame held no live copy?"
    );
    assert_eq!(recovery.keys_lost, 0, "the surviving replica covers it");
    assert_eq!(
        repair.copies, recovery.copies_lost,
        "one repaired copy per clipped copy"
    );

    assert_eq!(
        tiered.index().index_counts(),
        reference.index().index_counts()
    );
    assert_eq!(digests(&tiered, &log), expected);

    // Recovery cut the log back to its last intact frame (the repair
    // sweep then appended fresh ones), so a second restart after a sync
    // replays clean logs end to end and loses nothing.
    tiered.sync_storage();
    let (second, second_repair) = tiered.restart_peers(&[PeerId(0)]);
    assert_eq!(second.frames_discarded, 0, "the corrupt tail survived");
    assert_eq!(second.copies_lost, 0);
    assert_eq!(second_repair, RepairStats::default());
    assert_eq!(digests(&tiered, &log), expected);
}

#[test]
fn hot_budget_bounds_residency_and_pushes_the_rest_to_disk() {
    // The point of the tiered store: resident bytes obey the configured
    // budget, the remainder lives as sealed frames on disk, and the split
    // is visible per peer through the storage accounting.
    let c = collection(300);
    let parts = partition_documents(c.len(), 4, 7);
    let hot_bytes = 1 << 16;
    let tiered = HdkNetwork::build(
        &c,
        &parts,
        config(1, StoreConfig::segment(hot_bytes)),
        OverlayKind::PGrid,
    );

    let resident = tiered.index().resident_posting_bytes();
    let sealed = tiered.index().sealed_segment_bytes();
    assert!(
        resident <= hot_bytes,
        "budget violated: {resident} resident bytes > {hot_bytes}"
    );
    assert!(sealed > 0, "nothing spilled to disk under a 64 KiB budget");

    // Per-peer accounting splits the same totals by tier.
    let per_peer = tiered.index().storage_per_peer();
    assert_eq!(
        per_peer.iter().map(|s| s.resident_bytes()).sum::<u64>(),
        resident
    );
    assert_eq!(per_peer.iter().map(|s| s.sealed_bytes).sum::<u64>(), sealed);

    // The in-memory build keeps everything resident and nothing sealed.
    let memory = HdkNetwork::build(
        &c,
        &parts,
        config(1, StoreConfig::Memory),
        OverlayKind::PGrid,
    );
    assert_eq!(memory.index().sealed_segment_bytes(), 0);
    assert!(memory
        .index()
        .storage_per_peer()
        .iter()
        .all(|s| s.sealed_bytes == 0));
    assert!(memory.index().resident_posting_bytes() >= resident);
}
