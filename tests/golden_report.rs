//! Behavior-preservation golden test for the compressed-posting storage
//! refactor, plus the memory-footprint acceptance bound.
//!
//! The snapshot in `tests/golden/report.txt` was produced by the
//! *pre-refactor* implementation (decoded `Vec<Posting>` storage, side
//! re-encoding for byte meters). The storage rework — and every later
//! refactor, including the typed RPC layer — must reproduce every line:
//! `BuildReport` fields, full traffic counters including payload bytes,
//! and per-query top-k down to the f64 score bits. A second test replays
//! the identical scenario over the simulated-network backend: the counted
//! lines must not move, while the latency histograms fill up.

use p2p_hdk::golden::{
    golden_collection, golden_network, golden_network_with, golden_report_lines,
    golden_report_lines_with,
};
use p2p_hdk::prelude::*;

#[test]
fn report_matches_pre_refactor_snapshot() {
    let expected: Vec<&str> = include_str!("golden/report.txt").lines().collect();
    let actual = golden_report_lines();
    assert_eq!(
        actual.len(),
        expected.len(),
        "line count diverged from golden snapshot"
    );
    for (i, (a, e)) in actual.iter().zip(&expected).enumerate() {
        assert_eq!(a, e, "golden line {} diverged", i + 1);
    }
}

#[test]
fn simnet_backend_reproduces_golden_counts_with_nonzero_latency() {
    // The same golden scenario over SimNet with a realistically slow,
    // jittery network: every *counted* line must still match the
    // snapshot bit for bit (messages, postings, bytes, hops, top-k score
    // bits), because the simulated network only adds time.
    let sim = SimNetConfig {
        seed: 2_026,
        hop_ns: 400_000,
        jitter_ns: 150_000,
        ns_per_byte: 8,
        drop_prob: 0.05,
        timeout_ns: 5_000_000,
    };
    let expected: Vec<&str> = include_str!("golden/report.txt").lines().collect();
    let actual = golden_report_lines_with(BackendConfig::SimNet(sim));
    assert_eq!(actual.len(), expected.len());
    for (i, (a, e)) in actual.iter().zip(&expected).enumerate() {
        assert_eq!(a, e, "golden line {} diverged on SimNet", i + 1);
    }

    // And the time side: nonzero per-kind latency histograms wherever the
    // scenario moved messages, plus an advancing virtual clock.
    let network = golden_network_with(&golden_collection(), BackendConfig::SimNet(sim));
    let queries = network.query_service();
    let _ = queries.query_batch(
        &(0..8u64)
            .map(|p| (PeerId(p), vec![hdk_text::TermId(10), hdk_text::TermId(11)]))
            .collect::<Vec<_>>(),
        10,
    );
    let snap = queries.snapshot();
    for kind in [
        MsgKind::IndexInsert,
        MsgKind::IndexNotify,
        MsgKind::QueryLookup,
        MsgKind::QueryResponse,
    ] {
        let histogram = snap.latency(kind);
        assert_eq!(
            histogram.samples,
            snap.kind(kind).messages,
            "one latency sample per {kind:?} message"
        );
        assert!(histogram.samples > 0, "{kind:?} never travelled");
        assert!(histogram.total_ns > 0, "{kind:?} latencies all zero");
        assert!(
            histogram.max_ns >= sim.hop_ns,
            "{kind:?} slowest delivery below one hop"
        );
        assert!(histogram.quantile_ns(0.99) >= histogram.mean_ns() as u64);
    }
    assert!(
        queries.virtual_time_ns() > 0,
        "virtual clock must have advanced"
    );

    // The in-process build of the same scenario records no time at all.
    let baseline = golden_network(&golden_collection());
    let plain = baseline.snapshot();
    for kind in MsgKind::ALL {
        assert!(plain.latency(kind).is_empty());
    }
}

#[test]
fn golden_scenario_is_pinned_to_the_legacy_codec() {
    // The snapshot predates the gv4 block codec, so the golden scenario
    // pins `Codec::Leb128` explicitly: the default codec must stay legacy
    // (fresh configs produce snapshot-identical bytes) and the golden
    // network's resident blocks must all be legacy-framed even when the
    // environment selects gv4 (the `HDK_CODEC=gv4` CI leg).
    assert_eq!(Codec::default(), Codec::Leb128);
    let network = golden_network(&golden_collection());
    let mut blocks = 0u64;
    network.index().for_each_entry(|entry| {
        assert_eq!(
            entry.postings.codec(),
            Codec::Leb128,
            "golden block left the legacy codec"
        );
        blocks += 1;
    });
    assert!(blocks > 0, "golden network stored no keys");
}

#[test]
fn golden_report_is_replication_clean() {
    // The golden snapshot excludes the Repair and HotReplicate categories
    // (it predates the replication and read-scaling subsystems); this
    // guards that the exclusion is vacuous — an R=1 build without churn
    // never produces repair traffic, and with popularity replication off
    // (the default `hot_threshold: 0`) no hot copies ever move — so the
    // golden file keeps pinning *all* nonzero counters.
    let network = golden_network(&golden_collection());
    let repair = network.snapshot().kind(MsgKind::Repair);
    assert_eq!(repair.messages, 0);
    assert_eq!(repair.postings, 0);
    assert_eq!(repair.bytes, 0);
    let hot = network.snapshot().kind(MsgKind::HotReplicate);
    assert_eq!(hot.messages, 0);
    assert_eq!(hot.postings, 0);
    assert_eq!(hot.bytes, 0);
    // Gossip defaults off (`GossipConfig::fanout == 0`): no membership
    // probes, no failover timeouts — liveness stays on the oracle and
    // the golden scenario's meters are untouched by the subsystem.
    let gossip = network.snapshot().kind(MsgKind::Gossip);
    assert_eq!(gossip.messages, 0);
    assert_eq!(gossip.postings, 0);
    assert_eq!(gossip.bytes, 0);
    assert_eq!(network.snapshot().failover_timeouts, 0);
}

#[test]
fn resident_storage_beats_decoded_baseline_3x() {
    let network = golden_network(&golden_collection());
    let storage = network.index().storage_per_peer();
    assert_eq!(storage.len(), 8);
    let mut resident = 0u64;
    let mut baseline = 0u64;
    for (peer, s) in storage.iter().enumerate() {
        assert!(s.postings > 0, "peer {peer} stores nothing");
        assert!(
            s.resident_bytes() * 3 <= s.decoded_baseline_bytes(),
            "peer {peer}: resident {} bytes vs decoded baseline {} — ratio below 3x",
            s.resident_bytes(),
            s.decoded_baseline_bytes()
        );
        resident += s.resident_bytes();
        baseline += s.decoded_baseline_bytes();
    }
    let ratio = baseline as f64 / resident as f64;
    assert!(ratio >= 3.0, "aggregate improvement {ratio:.2}x < 3x");
    // The DHT-level accounting hook agrees with the per-peer sweep.
    assert_eq!(network.index().resident_posting_bytes(), resident);
    // Stored posting counts are unchanged by the accounting path.
    let per_peer: u64 = network.index().stored_postings_per_peer().iter().sum();
    let counted: u64 = storage.iter().map(|s| s.postings).sum();
    assert_eq!(per_peer, counted);
}
