//! Behavior-preservation golden test for the compressed-posting storage
//! refactor, plus the memory-footprint acceptance bound.
//!
//! The snapshot in `tests/golden/report.txt` was produced by the
//! *pre-refactor* implementation (decoded `Vec<Posting>` storage, side
//! re-encoding for byte meters). The storage rework must reproduce every
//! line — `BuildReport` fields, full traffic counters including payload
//! bytes, and per-query top-k down to the f64 score bits.

use p2p_hdk::golden::{golden_collection, golden_network, golden_report_lines};

#[test]
fn report_matches_pre_refactor_snapshot() {
    let expected: Vec<&str> = include_str!("golden/report.txt").lines().collect();
    let actual = golden_report_lines();
    assert_eq!(
        actual.len(),
        expected.len(),
        "line count diverged from golden snapshot"
    );
    for (i, (a, e)) in actual.iter().zip(&expected).enumerate() {
        assert_eq!(a, e, "golden line {} diverged", i + 1);
    }
}

#[test]
fn resident_storage_beats_decoded_baseline_3x() {
    let network = golden_network(&golden_collection());
    let storage = network.index().storage_per_peer();
    assert_eq!(storage.len(), 8);
    let mut resident = 0u64;
    let mut baseline = 0u64;
    for (peer, s) in storage.iter().enumerate() {
        assert!(s.postings > 0, "peer {peer} stores nothing");
        assert!(
            s.resident_bytes() * 3 <= s.decoded_baseline_bytes(),
            "peer {peer}: resident {} bytes vs decoded baseline {} — ratio below 3x",
            s.resident_bytes(),
            s.decoded_baseline_bytes()
        );
        resident += s.resident_bytes();
        baseline += s.decoded_baseline_bytes();
    }
    let ratio = baseline as f64 / resident as f64;
    assert!(ratio >= 3.0, "aggregate improvement {ratio:.2}x < 3x");
    // The DHT-level accounting hook agrees with the per-peer sweep.
    assert_eq!(network.index().resident_posting_bytes(), resident);
    // Stored posting counts are unchanged by the accounting path.
    let per_peer: u64 = network.index().stored_postings_per_peer().iter().sum();
    let counted: u64 = storage.iter().map(|s| s.postings).sum();
    assert_eq!(per_peer, counted);
}
