//! End-to-end test of the serving tier: real peer *processes* on
//! loopback sockets, compared bit-for-bit against the in-process build.
//!
//! One test function (the peer fleet and the `HDK_NET_TIMEOUT_MS`
//! override are process-global, so the scenario runs as one sequence):
//!
//! 1. spawn 3 `hdk-peer` processes, build the same corpus through
//!    `BackendConfig::Tcp` and `BackendConfig::InProc`;
//! 2. assert the index counts, per-peer storage, top-k f64 *score bits*
//!    and traffic counts (`TrafficSnapshot::same_counts`) are identical;
//! 3. drive the HTTP front-end over the TCP-backed service: `/health`,
//!    `/query` (results match the direct call), `/metrics` nonzero;
//! 4. kill one peer process mid-stream and assert queries surface
//!    bounded errors — degraded results plus a ticking transport-error
//!    counter — rather than hanging;
//! 5. spawn a fresh fleet with gossip membership enabled, crash one
//!    *logical* peer, and assert the fleet detects, confirms and
//!    repairs it via `WireRequest::Gossip` frames bit-identically to
//!    the in-process build — with failover timeouts ticking only while
//!    the views are stale.

use hdk_core::{spawn_http, BackendConfig, HdkConfig, HdkNetwork, OverlayKind, QueryService};
use hdk_corpus::{partition_documents, Collection, CollectionGenerator, GeneratorConfig};
use hdk_p2p::{GossipConfig, PeerId};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NPROCS: usize = 3;
const PEERS: usize = 8;
const DFMAX: u32 = 12;
const DOCS: usize = 240;

/// Kills the peer fleet even when an assertion panics.
struct Fleet(Vec<Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns one `hdk-peer` process on an ephemeral port and reads the
/// `LISTEN <addr>` line it prints once bound.
fn spawn_peer(proc_index: usize, replication: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hdk-peer"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--nprocs",
            &NPROCS.to_string(),
            "--proc",
            &proc_index.to_string(),
            "--peers",
            &PEERS.to_string(),
            "--dfmax",
            &DFMAX.to_string(),
            "--replication",
            &replication.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hdk-peer");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("unexpected peer banner {line:?}"))
        .to_string();
    (child, addr)
}

fn corpus() -> Collection {
    CollectionGenerator::new(GeneratorConfig {
        num_docs: DOCS,
        vocab_size: 3_000,
        seed: 7,
        ..GeneratorConfig::default()
    })
    .generate()
}

fn build(collection: &Collection, backend: BackendConfig) -> HdkNetwork {
    let partitions = partition_documents(collection.len(), PEERS, 42);
    let config = HdkConfig {
        dfmax: DFMAX,
        ..HdkConfig::default()
    };
    HdkNetwork::build_with(collection, &partitions, config, OverlayKind::PGrid, backend)
}

/// A minimal HTTP/1.1 GET, returning `(status, body)`.
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect HTTP front-end");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn queries(collection: &Collection) -> Vec<Vec<hdk_text::TermId>> {
    (0..24)
        .map(|i| collection.long_query(i * 37, 3 + i % 3))
        .collect()
}

fn assert_outcomes_identical(tcp: &QueryService, inproc: &QueryService, collection: &Collection) {
    for (i, terms) in queries(collection).iter().enumerate() {
        let from = PeerId((i % PEERS) as u64);
        let remote = tcp.query(from, terms, 10);
        let local = inproc.query(from, terms, 10);
        assert_eq!(remote.lookups, local.lookups, "query {i}: lookups differ");
        assert_eq!(
            remote.postings_fetched, local.postings_fetched,
            "query {i}: postings differ"
        );
        assert_eq!(
            remote.results.len(),
            local.results.len(),
            "query {i}: result count differs"
        );
        for (r, l) in remote.results.iter().zip(&local.results) {
            assert_eq!(r.doc, l.doc, "query {i}: doc order differs");
            assert_eq!(
                r.score.to_bits(),
                l.score.to_bits(),
                "query {i}: score bits differ for doc {:?}",
                r.doc
            );
        }
    }
}

#[test]
fn multiproc_serving_matches_inproc_and_fails_bounded() {
    // Bounded timeouts so the kill-one-peer phase fails fast (read at
    // TcpNet::connect time, hence set before any build).
    std::env::set_var("HDK_NET_TIMEOUT_MS", "2000");

    let mut fleet = Fleet(Vec::new());
    let mut addrs = Vec::new();
    for i in 0..NPROCS {
        let (child, addr) = spawn_peer(i, 1);
        fleet.0.push(child);
        addrs.push(addr);
    }

    let collection = corpus();
    let tcp_net = build(
        &collection,
        BackendConfig::Tcp {
            addrs: addrs.clone(),
        },
    );
    let inproc_net = build(&collection, BackendConfig::InProc);
    let tcp = tcp_net.query_service();
    let inproc = inproc_net.query_service();

    // --- Phase 2: the multi-process build is bit-identical. ---
    let tcp_counts = tcp.index().index_counts();
    let inproc_counts = inproc.index().index_counts();
    assert_eq!(tcp_counts, inproc_counts, "index counts diverge");
    assert!(
        tcp_counts.total_keys() > 0,
        "trivial corpus: nothing indexed"
    );
    assert_eq!(
        tcp.index().stored_postings_per_peer(),
        inproc.index().stored_postings_per_peer(),
        "per-peer stored postings diverge"
    );
    assert_outcomes_identical(&tcp, &inproc, &collection);
    // Traffic counts (messages, postings, bytes, per-peer tallies) sum
    // across the stripe-disjoint processes to exactly the single-process
    // meters; only latency histograms (wall-clock vs none) may differ.
    let tcp_snapshot = tcp.snapshot();
    assert!(
        tcp_snapshot.same_counts(&inproc.snapshot()),
        "traffic counts diverge:\n tcp: {:?}\n inproc: {:?}",
        tcp_snapshot.kinds,
        inproc.snapshot().kinds
    );
    assert_eq!(
        tcp.transport_errors(),
        0,
        "healthy run must not tick errors"
    );

    // --- Phase 3: the HTTP front-end over the TCP-backed service. ---
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = spawn_http(listener, tcp.clone()).expect("spawn http");
    let http_addr = handle.addr();

    let (status, health) = http_get(http_addr, "/health");
    assert_eq!(status, 200, "health: {health}");
    assert!(health.contains("\"status\":\"ok\""), "health: {health}");
    assert!(
        health.contains(&format!("\"peers\":{PEERS}")),
        "health: {health}"
    );

    let terms = queries(&collection)[0].clone();
    let q: Vec<String> = terms.iter().map(|t| t.0.to_string()).collect();
    let (status, body) = http_get(http_addr, &format!("/query?q={}&k=5", q.join(",")));
    assert_eq!(status, 200, "query: {body}");
    let direct = inproc.query(PeerId(0), &terms, 5);
    for result in &direct.results {
        // Full-precision score serialization: the exact Display form of
        // every score must appear in the JSON body.
        let fragment = format!("{{\"doc\":{},\"score\":{}}}", result.doc.0, result.score);
        assert!(body.contains(&fragment), "missing {fragment} in {body}");
    }

    let (status, metrics) = http_get(http_addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("hdk_traffic_messages_total{kind=\"index_insert\"}"),
        "metrics: {metrics}"
    );
    assert!(
        !metrics.contains("hdk_traffic_messages_total{kind=\"index_insert\"} 0\n"),
        "insert counter must be nonzero after a build"
    );
    assert!(metrics.contains("hdk_http_requests_total{route=\"query\"} 1"));

    let (status, _) = http_get(http_addr, "/nope");
    assert_eq!(status, 404);
    let (status, body) = http_get(http_addr, "/query?q=abc");
    assert_eq!(status, 400, "bad q must be a 400: {body}");

    // --- Phase 4: kill one peer process; errors, not hangs. ---
    fleet.0[1].kill().expect("kill peer 1");
    fleet.0[1].wait().expect("reap peer 1");
    let errors_before = tcp.transport_errors();
    let started = Instant::now();
    let mut degraded = 0usize;
    for (i, terms) in queries(&collection).iter().enumerate() {
        let outcome = tcp.query(PeerId((i % PEERS) as u64), terms, 10);
        let reference = inproc.query(PeerId((i % PEERS) as u64), terms, 10);
        if outcome.results.len() != reference.results.len()
            || outcome
                .results
                .iter()
                .zip(&reference.results)
                .any(|(a, b)| a.doc != b.doc)
        {
            degraded += 1;
        }
    }
    let elapsed = started.elapsed();
    assert!(
        tcp.transport_errors() > errors_before,
        "a dead process must tick the transport-error counter"
    );
    assert!(degraded > 0, "a dead process must degrade some queries");
    // 24 queries against a 2s-timeout transport: failed probes surface
    // as fast connect-refused errors, not 24 stacked timeouts. Allow
    // generous slack for slow CI machines while still catching hangs.
    assert!(
        elapsed < Duration::from_secs(60),
        "queries against a dead peer took {elapsed:?} — hanging, not failing"
    );

    handle.stop();

    // --- Phase 5: a fresh fleet with gossip enabled. A *logical* peer
    // crashes (every process stays up); with the liveness oracle off,
    // detection, universal confirmation and the triggered repair all
    // travel as `WireRequest::Gossip` frames in lockstep with the
    // front-end mirror — and once the views converge, queries stop
    // paying failover timeouts. The whole trajectory must be
    // bit-identical to the in-process build. ---
    let mut gossip_fleet = Fleet(Vec::new());
    let mut gossip_addrs = Vec::new();
    for i in 0..NPROCS {
        let (child, addr) = spawn_peer(i, 2);
        gossip_fleet.0.push(child);
        gossip_addrs.push(addr);
    }
    let gossip_config = HdkConfig {
        dfmax: DFMAX,
        replication: 2,
        gossip: GossipConfig {
            fanout: 2,
            suspicion_rounds: 2,
            loss_prob: 0.2,
            seed: 42,
        },
        ..HdkConfig::default()
    };
    let partitions = partition_documents(collection.len(), PEERS, 42);
    let mut fleet_net = HdkNetwork::build_with(
        &collection,
        &partitions,
        gossip_config.clone(),
        OverlayKind::PGrid,
        BackendConfig::Tcp {
            addrs: gossip_addrs,
        },
    );
    let mut local_net = HdkNetwork::build_with(
        &collection,
        &partitions,
        gossip_config,
        OverlayKind::PGrid,
        BackendConfig::InProc,
    );
    let victim = PeerId((PEERS - 1) as u64);
    let batch = |net: &HdkNetwork| -> Vec<Vec<(u32, u64)>> {
        queries(&collection)
            .iter()
            .enumerate()
            .map(|(i, terms)| {
                // Queriers rotate over the survivors only.
                let from = PeerId((i % (PEERS - 1)) as u64);
                net.query(from, terms, 10)
                    .results
                    .iter()
                    .map(|r| (r.doc.0, r.score.to_bits()))
                    .collect()
            })
            .collect()
    };

    assert_eq!(
        batch(&fleet_net),
        batch(&local_net),
        "healthy gossip fleet diverged"
    );
    assert_eq!(fleet_net.snapshot().failover_timeouts, 0);

    let loss = fleet_net.fail_peers(vec![victim]);
    assert_eq!(loss.keys_lost, 0, "R=2 single crash lost content");
    local_net.fail_peers(vec![victim]);

    assert_eq!(
        batch(&fleet_net),
        batch(&local_net),
        "stale-view queries diverged"
    );
    let timeouts_stale = fleet_net.snapshot().failover_timeouts;
    assert!(
        timeouts_stale > 0,
        "stale views must pay failover timeouts at the corpse"
    );
    assert_eq!(timeouts_stale, local_net.snapshot().failover_timeouts);

    let mut rounds = 0;
    let mut repaired = false;
    while fleet_net.gossip_converged() != Some(true) {
        assert!(rounds < 64, "fleet views failed to converge");
        let fleet_out = fleet_net.gossip_round();
        let local_out = local_net.gossip_round();
        assert_eq!(
            fleet_out, local_out,
            "gossip round {rounds}: fleet diverged from in-process"
        );
        repaired |= fleet_out.repair.is_some_and(|r| r.copies > 0);
        rounds += 1;
    }
    assert_eq!(local_net.gossip_converged(), Some(true));
    assert!(
        repaired,
        "universal confirmation never fired the repair sweep"
    );

    assert_eq!(
        batch(&fleet_net),
        batch(&local_net),
        "post-convergence queries diverged"
    );
    assert_eq!(
        fleet_net.snapshot().failover_timeouts,
        timeouts_stale,
        "converged views must stop paying failover timeouts"
    );
    // The stripe-disjoint process meters (plus the silent mirror) sum to
    // exactly the single-process counters, gossip probes included.
    let fleet_snap = fleet_net.snapshot();
    assert!(fleet_snap.kind(hdk_p2p::MsgKind::Gossip).messages > 0);
    assert!(
        fleet_snap.same_counts(&local_net.snapshot()),
        "gossip-fleet traffic counts diverged from in-process"
    );
}
