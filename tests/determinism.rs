//! Reproducibility: every figure in `EXPERIMENTS.md` must be exactly
//! re-derivable, so the whole stack — generation, partitioning, parallel
//! indexing, retrieval — has to be deterministic in the seed.

use p2p_hdk::prelude::*;

fn build_once(seed: u64, overlay: OverlayKind) -> (Collection, HdkNetwork) {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 300,
        vocab_size: 3_000,
        avg_doc_len: 50,
        num_topics: 25,
        topic_vocab: 50,
        seed,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), 5, seed);
    let network = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax: 15,
            ff: 2_000,
            ..HdkConfig::default()
        },
        overlay,
    );
    (collection, network)
}

#[test]
fn identical_seeds_identical_networks() {
    let (c1, n1) = build_once(77, OverlayKind::PGrid);
    let (c2, n2) = build_once(77, OverlayKind::PGrid);
    assert_eq!(c1.docs(), c2.docs());
    let (r1, r2) = (n1.build_report(), n2.build_report());
    assert_eq!(r1.inserted_by_size, r2.inserted_by_size);
    assert_eq!(r1.stored_per_peer, r2.stored_per_peer);
    assert_eq!(r1.counts, r2.counts);

    // Queries agree bit-for-bit.
    let log = QueryLog::generate(
        &c1,
        &QueryLogConfig {
            num_queries: 25,
            ..QueryLogConfig::default()
        },
    );
    for q in &log.queries {
        let a = n1.query(PeerId(1), &q.terms, 20);
        let b = n2.query(PeerId(1), &q.terms, 20);
        assert_eq!(a.results, b.results);
        assert_eq!(a.postings_fetched, b.postings_fetched);
        assert_eq!(a.lookups, b.lookups);
    }
}

#[test]
fn different_seeds_differ() {
    let (_, n1) = build_once(1, OverlayKind::PGrid);
    let (_, n2) = build_once(2, OverlayKind::PGrid);
    assert_ne!(
        n1.build_report().stored_per_peer,
        n2.build_report().stored_per_peer
    );
}

#[test]
fn overlay_choice_does_not_change_posting_results() {
    // Section 4 argues in postings, independent of the routing substrate.
    // The stored index and query answers must be identical across
    // overlays; only hop counts and peer placement may differ.
    let (c, pgrid) = build_once(9, OverlayKind::PGrid);
    let (_, chord) = build_once(9, OverlayKind::Chord);
    let (rp, rc) = (pgrid.build_report(), chord.build_report());
    assert_eq!(rp.inserted_by_size, rc.inserted_by_size);
    assert_eq!(rp.counts, rc.counts);

    let log = QueryLog::generate(
        &c,
        &QueryLogConfig {
            num_queries: 25,
            ..QueryLogConfig::default()
        },
    );
    for q in &log.queries {
        let a = pgrid.query(PeerId(0), &q.terms, 20);
        let b = chord.query(PeerId(0), &q.terms, 20);
        assert_eq!(a.results, b.results, "results diverged for {:?}", q.terms);
        assert_eq!(a.postings_fetched, b.postings_fetched);
    }
}
