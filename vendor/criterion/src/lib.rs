//! Minimal `criterion` shim (see `vendor/README.md`).
//!
//! Same macro/builder surface as the real crate for the subset the
//! workspace's benches use; measurement is plain wall-clock (warmup, then
//! timed batches) reporting mean and best iteration time. No statistical
//! analysis, no HTML reports, no baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry/driver, handed to every `criterion_group!` function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free CLI arg (as passed by `cargo bench -- <filter>`) filters
        // benchmark ids by substring; harness flags are accepted and ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Self { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 30,
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs (setup runs per batch of iterations).
    SmallInput,
    /// Large per-iteration inputs (setup runs per iteration).
    LargeInput,
}

/// A benchmark id with a parameter, for `bench_with_input`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (the shim uses it to bound timed iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the shim sizes runs by `sample_size` only.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.run(full, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.run(full, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, id: String, mut f: F) {
        if !self.criterion.matches(&id) {
            return;
        }
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            total: Duration::ZERO,
            best: Duration::MAX,
            performed: 0,
        };
        f(&mut bencher);
        let mean = if bencher.performed > 0 {
            bencher.total / bencher.performed as u32
        } else {
            Duration::ZERO
        };
        let rate = self.throughput.and_then(|t| {
            if mean.is_zero() {
                return None;
            }
            Some(match t {
                Throughput::Elements(n) => {
                    format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!(
                        "  {:.0} MiB/s",
                        n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                    )
                }
            })
        });
        println!(
            "{id:<50} mean {mean:>12.3?}  best {:>12.3?}{}",
            bencher.best,
            rate.unwrap_or_default()
        );
    }

    /// Finishes the group (API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    total: Duration,
    best: Duration,
    performed: u64,
}

impl Bencher {
    /// Times `f`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup (not timed).
        black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            self.total += dt;
            self.best = self.best.min(dt);
            self.performed += 1;
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    /// Deprecated alias of `iter_batched` in real criterion; kept callable.
    pub fn iter_with_setup<I, R, S, F>(&mut self, setup: S, routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.iter_batched(setup, routine, BatchSize::SmallInput);
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            self.total += dt;
            self.best = self.best.min(dt);
            self.performed += 1;
        }
    }
}

/// Declares a group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 10],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
