//! Minimal `rand` shim (see `vendor/README.md`).
//!
//! Provides the `rand` 0.8 API subset the workspace uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed, but a *different stream* than upstream `StdRng`),
//! and [`seq::SliceRandom::shuffle`] (Fisher–Yates).

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly "at standard" (the `Standard` distribution of
/// real `rand`): what `rng.gen::<T>()` produces.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply range reduction (Lemire); bias is < 2^-64
                // per draw, far below anything the workspace's statistical
                // tests can resolve.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value API (blanket-implemented for every
/// [`RngCore`], like real `rand`'s `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over `T`'s domain; `[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64. Deterministic per seed; NOT the same stream
    /// as upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
