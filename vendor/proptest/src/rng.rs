//! Deterministic per-case random source.

/// SplitMix64-based generator. Each `(test name, case index)` pair maps to a
/// fixed stream, so failures reproduce without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for case `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng = Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E3779B97F4A7C15)),
        };
        // Warm up so adjacent cases decorrelate.
        rng.next_u64();
        rng
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}
