//! Minimal `proptest` shim (see `vendor/README.md`).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, the [`Strategy`]
//! trait with `prop_map`, integer/float range strategies, `any::<T>()`, a
//! regex-subset string strategy (`.`, `[a-z]`-style classes, `{m,n}`
//! quantifiers), `collection::{vec, btree_map}` and tuple strategies.
//!
//! No shrinking: a failing case reports its inputs (via the panic message)
//! but not a minimal counterexample. Case generation is deterministic per
//! (test name, case index), so failures reproduce across runs.

use std::ops::{Range, RangeInclusive};

mod rng;
mod string;

pub use rng::TestRng;

/// Run-time configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// An assertion failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategies are usable behind references (parity with real proptest).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of `0`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the whole domain of `T`.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Sizes for collection strategies (a `usize` range).
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(&self.0, rng)
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec()`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with *up to* `size` entries (duplicate
    /// keys collapse, matching real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// The [`btree_map`] strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Drives one `proptest!`-generated test: `cases` deterministic cases, a
/// panic with diagnostics on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, i);
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!(
                "proptest case {i}/{} failed for `{test_name}`: {msg}\n\
                 (deterministic: rerun reproduces it; no shrinking in the vendored shim)",
                config.cases
            );
        }
    }
}

/// String strategies from a regex subset; see `string::pattern`.
/// (`&str` gets this through the blanket `&S` impl.)
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::pattern(self).generate(rng)
    }
}

pub use string::PatternStrategy;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    pub mod prop {
        //! The `prop::` paths (`prop::collection::vec`, ...).
        pub use crate::collection;
    }
}

/// Defines property tests. Grammar (subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u32..20, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps(
            pair in (0u32..5, 10u64..20),
            m in prop::collection::btree_map(0u32..100, 0u8..3, 0..10),
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert!(m.len() < 10);
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }

        #[test]
        fn string_patterns(short in "[a-z]{1,12}", free in ".{0,40}") {
            prop_assert!((1..=12).contains(&short.chars().count()));
            prop_assert!(short.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(free.chars().count() <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(crate::TestRng::for_case("t", 3).next_u64(), c.next_u64());
    }
}
