//! String strategy over a small regex subset.
//!
//! Supported pattern grammar (everything the workspace's tests use):
//!
//! * `.` — any printable character (mostly ASCII, occasionally a
//!   multi-byte alphabetic so Unicode handling gets exercised),
//! * `[a-z0-9_]`-style character classes (literal chars and ranges),
//! * `{m,n}` / `{m}` quantifiers after an atom (default: exactly once),
//! * any other character — itself, literally.

use crate::{Strategy, TestRng};

/// One parsed atom plus its repetition bounds.
#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.`
    AnyChar,
    /// `[...]` — concrete choices, pre-expanded.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

/// A compiled pattern strategy; build with `pattern`.
#[derive(Debug, Clone)]
pub struct PatternStrategy {
    pieces: Vec<Piece>,
}

/// Sprinkle of non-ASCII alphabetics so `.` exercises multi-byte paths.
const WIDE_CHARS: &[char] = &['é', 'ß', 'λ', 'Ω', '中', '文', 'ü', 'ñ', '☃'];

/// Compiles `pat` into a strategy.
///
/// # Panics
/// Panics on malformed patterns (unclosed `[` or `{`) — patterns are
/// compile-time constants in tests, so loud failure beats silent garbage.
pub fn pattern(pat: &str) -> PatternStrategy {
    let mut chars = pat.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut choices = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unclosed [ in {pat:?}"));
                    if c == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling range in {pat:?}"));
                        assert!(hi != ']', "dangling range in {pat:?}");
                        for v in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                choices.push(ch);
                            }
                        }
                    } else {
                        choices.push(c);
                    }
                }
                assert!(!choices.is_empty(), "empty class in {pat:?}");
                Atom::Class(choices)
            }
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                let c = chars
                    .next()
                    .unwrap_or_else(|| panic!("unclosed {{ in {pat:?}"));
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad bound in {pat:?}")),
                    hi.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad bound in {pat:?}")),
                ),
                None => {
                    let n = spec
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad bound in {pat:?}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted bounds in {pat:?}");
        pieces.push(Piece { atom, min, max });
    }
    PatternStrategy { pieces }
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::AnyChar => {
                // 1-in-8 draws leave printable ASCII.
                if rng.below(8) == 0 {
                    WIDE_CHARS[rng.below(WIDE_CHARS.len())]
                } else {
                    char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ASCII")
                }
            }
            Atom::Class(choices) => choices[rng.below(choices.len())],
            Atom::Literal(c) => *c,
        }
    }
}

impl Strategy for PatternStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.min
                + rng
                    .below(piece.max - piece.min + 1)
                    .min(piece.max - piece.min);
            for _ in 0..n {
                out.push(piece.atom.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string_tests", 0)
    }

    #[test]
    fn class_with_quantifier() {
        let s = pattern("[a-z]{1,12}");
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((1..=12).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase()), "{v:?}");
        }
    }

    #[test]
    fn dot_with_zero_min() {
        let s = pattern(".{0,40}");
        let mut r = rng();
        let mut empties = 0;
        for _ in 0..300 {
            let v = s.generate(&mut r);
            assert!(v.chars().count() <= 40);
            if v.is_empty() {
                empties += 1;
            }
        }
        assert!(empties > 0, "min bound never hit");
    }

    #[test]
    fn literals_and_exact_counts() {
        let s = pattern("ab[01]{3}");
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert_eq!(v.len(), 5);
            assert!(v.starts_with("ab"));
            assert!(v[2..].chars().all(|c| c == '0' || c == '1'));
        }
    }
}
