//! Minimal vendored shim for the `tempfile` crate.
//!
//! Covers exactly the surface this workspace uses: [`tempdir`] /
//! [`TempDir::new`] creating a unique scratch directory under the system
//! temp dir, [`TempDir::path`] to address it, and best-effort recursive
//! removal on drop (or explicit, fallible removal via [`TempDir::close`]).
//!
//! Unlike the real crate, names are not random: they combine the process id
//! with a process-wide counter, and creation retries past collisions with
//! leftovers from earlier runs. That is enough for unique, non-clashing
//! test directories without pulling in a randomness dependency.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A directory in the filesystem that is recursively deleted when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: Option<PathBuf>,
}

impl TempDir {
    /// Creates a fresh scratch directory under [`std::env::temp_dir`].
    pub fn new() -> io::Result<TempDir> {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        loop {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let candidate = base.join(format!(".tmp-hdk-{pid}-{id}"));
            // create_dir (not create_dir_all) so an existing leftover from a
            // recycled pid fails the attempt and the loop picks a new name
            // instead of adopting foreign contents.
            match std::fs::create_dir(&candidate) {
                Ok(()) => {
                    return Ok(TempDir {
                        path: Some(candidate),
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        self.path.as_deref().expect("TempDir is live until dropped")
    }

    /// Deletes the directory now, reporting any error (the drop-based
    /// cleanup is best-effort and silent).
    pub fn close(mut self) -> io::Result<()> {
        match self.path.take() {
            Some(p) => std::fs::remove_dir_all(p),
            None => Ok(()),
        }
    }

    /// Releases ownership: the directory is *not* deleted on drop.
    pub fn into_path(mut self) -> PathBuf {
        self.path.take().expect("TempDir is live until dropped")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_dir_all(p);
        }
    }
}

/// Creates a new [`TempDir`] (free-function form, as in the real crate).
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_removes_on_drop() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept_a = a.path().to_path_buf();
        std::fs::write(kept_a.join("f.txt"), b"x").unwrap();
        drop(a);
        assert!(!kept_a.exists(), "drop removes the tree");
        let kept_b = b.path().to_path_buf();
        b.close().unwrap();
        assert!(!kept_b.exists());
    }

    #[test]
    fn into_path_detaches_cleanup() {
        let d = tempdir().unwrap();
        let p = d.into_path();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}
