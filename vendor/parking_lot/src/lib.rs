//! Minimal `parking_lot` shim over `std::sync` (see `vendor/README.md`).
//!
//! Same API shape as the real crate for the subset the workspace uses:
//! `lock()` / `read()` / `write()` return guards directly (no poisoning —
//! a panicked holder's poison flag is cleared, matching `parking_lot`
//! semantics where a panic simply releases the lock).

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive, API-compatible with `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "shim must ignore poisoning");
    }
}
