//! Minimal `bytes` shim (see `vendor/README.md`): contiguous `Arc`-backed
//! immutable buffers with cheap cloning/slicing, plus a growable `BytesMut`
//! that freezes into `Bytes`. Covers the cursor-style `Buf`/`BufMut` subset
//! the workspace's posting-list codec uses.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor past `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// Cheaply cloneable immutable byte buffer; reading via [`Buf`] consumes a
/// cursor (advances `start`) without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Number of (unread) bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read() {
        let mut m = BytesMut::with_capacity(4);
        m.put_u8(1);
        m.put_slice(&[2, 3]);
        let mut b = m.freeze();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u8(), 2);
        assert_eq!(b.get_u8(), 3);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        let s2 = s.slice(..2);
        assert_eq!(s2.as_ref(), &[1, 2]);
        assert_eq!(b.len(), 5, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn overread_panics() {
        Bytes::new().get_u8();
    }
}
