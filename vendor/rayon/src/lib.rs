//! Minimal `rayon` shim (see `vendor/README.md`).
//!
//! Genuinely parallel: work is split into contiguous chunks executed on a
//! **persistent worker pool** (capped by the `RAYON_NUM_THREADS`
//! environment variable, like real rayon). Results of `map().collect()`
//! preserve input order, so parallel collects are deterministic regardless
//! of thread count or scheduling.
//!
//! Covered subset: `par_iter()` on slices/`Vec`s, `into_par_iter()` on
//! `Range<usize>`, `map` + `collect`, `for_each`, [`join`], and
//! [`current_num_threads`].
//!
//! ## Pool design
//!
//! Earlier revisions spawned `std::thread::scope` threads per fan-out;
//! that was fine while parallel sections were coarse (one task per peer or
//! stripe, hundreds of microseconds each) but became hot once the query
//! path started fanning out *per lattice level* — thousands of short
//! parallel sections per query batch. The pool keeps workers parked on a
//! condvar instead:
//!
//! * A parallel call splits `0..len` into one contiguous chunk per
//!   logical thread and publishes a type-erased job reference (`JobRef`)
//!   to the shared injector queue — one copy per *helper* it invites
//!   (threads − 1).
//! * Work is claimed through the job's atomic chunk counter, so the
//!   caller itself always makes progress (it drains the counter even if
//!   every worker is busy) and a helper that arrives late simply finds the
//!   counter exhausted. Results are written into per-index slots, so the
//!   outcome is position-deterministic no matter which thread computed
//!   what.
//! * When the caller finishes claiming it withdraws its unclaimed helper
//!   invitations from the queue (they are cheap copies), then parks until
//!   the in-flight chunks land. A worker's final act on a job is to
//!   unpark the owner — through a `Thread` handle cloned *before* the
//!   completion count drops, so the job's stack frame can never be freed
//!   while anyone still touches it.
//! * Nested parallel calls (a worker executing a chunk that itself fans
//!   out) cannot deadlock: every waiter first exhausts its own job's
//!   chunk counter, so a waiter only ever waits on threads that are
//!   actively running — the wait-for graph follows job-creation order and
//!   stays acyclic.
//!
//! Panics inside parallel closures are caught per chunk, forwarded to the
//! owning caller and re-thrown there (matching the old scoped-thread
//! behavior where the panic propagated at join time); workers survive.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::Thread;

/// Number of threads parallel operations will use: `RAYON_NUM_THREADS` if
/// set to a positive integer, otherwise `std::thread::available_parallelism`.
///
/// Read per call (not cached) so tests can flip the variable between runs.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    // `available_parallelism` probes sched_getaffinity and the cgroup fs
    // on every call; with per-level query fan-out issuing thousands of
    // parallel sections per batch that syscall traffic dominated short
    // sections. The machine's parallelism is fixed for the process
    // lifetime, so resolve it once.
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A type-erased pointer to a stack-allocated job plus its executor
/// function. Copies of one job's `JobRef` are interchangeable: executing
/// any of them claims chunks from the job's shared counter.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: the pointee is a stack-allocated job whose owner blocks until
// every outstanding reference is either executed or withdrawn from the
// queue; the job types themselves only expose Sync-safe state (atomics,
// shared closures, disjoint output slots).
unsafe impl Send for JobRef {}

struct PoolState {
    queue: VecDeque<JobRef>,
    /// Workers spawned so far (grown on demand, never shrunk).
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// Hard cap on pool size; far above any sane `RAYON_NUM_THREADS` while
/// still bounding a misconfigured environment.
const MAX_WORKERS: usize = 256;

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                workers: 0,
            }),
            available: Condvar::new(),
        })
    }

    /// Publishes `copies` invitations for `job` and makes sure enough
    /// workers exist to honor them (growing the pool up to `copies`).
    ///
    /// Worker spawning happens *outside* the pool lock and tolerates
    /// failure: if the OS refuses a thread (transient exhaustion), the
    /// pool simply stays smaller — the caller always drains its own chunk
    /// counter, so forward progress never depends on growth succeeding.
    fn inject(&'static self, job: JobRef, copies: usize) {
        if copies == 0 {
            return;
        }
        let to_spawn = {
            let mut state = self.state.lock().expect("pool poisoned");
            for _ in 0..copies {
                state.queue.push_back(job);
            }
            // Lazily grow the pool: at most `copies` helpers can run this
            // job besides the caller, and idle workers are parked, not
            // burning CPU. Claim the slots optimistically under the lock.
            let want = copies.min(MAX_WORKERS).saturating_sub(state.workers);
            state.workers += want;
            want
        };
        for _ in 0..to_spawn {
            let spawned = std::thread::Builder::new()
                .name("rayon-shim-worker".to_string())
                .spawn(move || self.worker_loop());
            if spawned.is_err() {
                // Roll back the optimistic claim; retry on a later inject.
                self.state.lock().expect("pool poisoned").workers -= 1;
            }
        }
        self.available.notify_all();
    }

    /// Withdraws still-queued invitations for `data`, returning how many
    /// were removed (the rest are executing or already done).
    fn withdraw(&'static self, data: *const ()) -> usize {
        let mut state = self.state.lock().expect("pool poisoned");
        let before = state.queue.len();
        state.queue.retain(|j| !std::ptr::eq(j.data, data));
        before - state.queue.len()
    }

    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool poisoned");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    state = self.available.wait(state).expect("pool poisoned");
                }
            };
            // SAFETY: the owner keeps the job alive until this returns
            // (it waits for `active_refs` to drain).
            unsafe { (job.execute)(job.data) };
        }
    }
}

/// Completion bookkeeping shared by the job types below.
struct JobCore {
    /// Chunks not yet fully executed.
    pending_chunks: AtomicUsize,
    /// Helper invitations outstanding (queued or executing).
    active_refs: AtomicUsize,
    /// First panic payload caught in any chunk's closure; the owner
    /// re-throws it after the job completes, preserving the original
    /// message like the old scoped-thread join did.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The owning thread, unparked whenever a helper finishes.
    owner: Thread,
}

impl JobCore {
    fn new(chunks: usize, helpers: usize) -> Self {
        Self {
            pending_chunks: AtomicUsize::new(chunks),
            active_refs: AtomicUsize::new(helpers),
            panic: Mutex::new(None),
            owner: std::thread::current(),
        }
    }

    /// Records the first panic payload observed by any chunk.
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Re-throws a recorded chunk panic on the owner, if any. Must only be
    /// called after [`JobCore::wait`].
    fn resume_panic(&self) {
        let payload = self.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Parks the owner until every chunk completed and every helper
    /// invitation was consumed or withdrawn.
    fn wait(&self) {
        while self.pending_chunks.load(Ordering::Acquire) != 0
            || self.active_refs.load(Ordering::Acquire) != 0
        {
            std::thread::park();
        }
    }

    /// A helper's sign-off: drop its invitation and wake the owner. The
    /// owner handle is cloned *before* the decrement — the moment the
    /// count hits zero the owner may free the job's stack frame, so this
    /// must be the last access to `self`.
    fn helper_done(&self) {
        let owner = self.owner.clone();
        self.active_refs.fetch_sub(1, Ordering::Release);
        owner.unpark();
    }
}

/// The chunked indexed job behind every `parallel_indexed` call.
struct IndexedJob<'a, R, F> {
    f: &'a F,
    /// Base pointer of the `Option<R>` slot array; workers write disjoint
    /// indices.
    slots: *mut Option<R>,
    len: usize,
    chunk_size: usize,
    num_chunks: usize,
    next_chunk: AtomicUsize,
    core: JobCore,
}

impl<R, F> IndexedJob<'_, R, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Claims and executes chunks until the counter runs dry.
    fn run_chunks(&self) {
        loop {
            let chunk = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.num_chunks {
                return;
            }
            let start = chunk * self.chunk_size;
            let end = (start + self.chunk_size).min(self.len);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    // SAFETY: chunks partition 0..len disjointly; nobody
                    // else touches these slots until the owner observes
                    // the completion count.
                    unsafe { *self.slots.add(i) = Some((self.f)(i)) };
                }
            }));
            if let Err(payload) = outcome {
                self.core.record_panic(payload);
            }
            self.core.pending_chunks.fetch_sub(1, Ordering::Release);
            self.core.owner.unpark();
        }
    }

    unsafe fn execute(data: *const ()) {
        let job = &*(data as *const Self);
        job.run_chunks();
        job.core.helper_done();
    }
}

/// Order-preserving parallel map over `0..len`: the chunked backbone of
/// every iterator below, scheduled on the persistent pool.
fn parallel_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk_size = len.div_ceil(threads);
    let num_chunks = len.div_ceil(chunk_size);
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);

    let helpers = num_chunks - 1;
    let job = IndexedJob {
        f: &f,
        slots: out.as_mut_ptr(),
        len,
        chunk_size,
        num_chunks,
        next_chunk: AtomicUsize::new(0),
        core: JobCore::new(num_chunks, helpers),
    };
    let data = &job as *const IndexedJob<'_, R, F> as *const ();
    let pool = Pool::global();
    pool.inject(
        JobRef {
            data,
            execute: IndexedJob::<R, F>::execute,
        },
        helpers,
    );
    job.run_chunks();
    let withdrawn = pool.withdraw(data);
    job.core.active_refs.fetch_sub(withdrawn, Ordering::AcqRel);
    job.core.wait();
    job.core.resume_panic();
    out.into_iter()
        .map(|o| o.expect("parallel worker panicked"))
        .collect()
}

/// One-shot closure job backing [`join`]'s second arm.
struct JoinJob<'a, B, RB> {
    /// Consumed by whichever thread executes the arm — the `Mutex`
    /// arbitrates between a pool worker and an owner whose withdrawal
    /// raced the worker's pop.
    b: &'a Mutex<Option<B>>,
    result: &'a Mutex<Option<std::thread::Result<RB>>>,
    core: JobCore,
}

impl<B, RB> JoinJob<'_, B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn run(&self) {
        let taken = self.b.lock().expect("join arm poisoned").take();
        if let Some(b) = taken {
            let outcome = catch_unwind(AssertUnwindSafe(b));
            *self.result.lock().expect("join result poisoned") = Some(outcome);
            self.core.pending_chunks.fetch_sub(1, Ordering::Release);
            self.core.owner.unpark();
        }
    }

    unsafe fn execute(data: *const ()) {
        let job = &*(data as *const Self);
        job.run();
        job.core.helper_done();
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let arm = Mutex::new(Some(b));
    let result: Mutex<Option<std::thread::Result<RB>>> = Mutex::new(None);
    let job = JoinJob {
        b: &arm,
        result: &result,
        core: JobCore::new(1, 1),
    };
    let data = &job as *const JoinJob<'_, B, RB> as *const ();
    let pool = Pool::global();
    pool.inject(
        JobRef {
            data,
            execute: JoinJob::<B, RB>::execute,
        },
        1,
    );
    // Catch a panicking first arm instead of unwinding past the protocol:
    // the job lives on this stack frame and its invitation may still be
    // queued (or executing), so the frame must stay alive until the
    // handshake completes — unwinding here would hand a worker a dangling
    // pointer.
    let ra = catch_unwind(AssertUnwindSafe(a));
    // Prefer running the second arm inline if no worker picked it up yet.
    let withdrawn = pool.withdraw(data);
    if withdrawn > 0 {
        job.core.active_refs.fetch_sub(withdrawn, Ordering::AcqRel);
        job.run();
    }
    job.core.wait();
    let rb = result
        .lock()
        .expect("join result poisoned")
        .take()
        .expect("join arm never ran");
    // Like real rayon, a panic in the first arm wins (b's result, or even
    // b's own panic, is discarded).
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) | (Ok(_), Err(payload)) => resume_unwind(payload),
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element (lazily; evaluated in parallel at `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_indexed(self.items.len(), |i| f(&self.items[i]));
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazily mapped parallel iterator over `&[T]`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates in parallel, collecting results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index (lazily; evaluated in parallel at `collect`).
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let base = self.range.start;
        parallel_indexed(self.range.len(), |i| f(base + i));
    }
}

/// Lazily mapped parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<R, F> ParRangeMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Evaluates in parallel, collecting results in index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let base = self.range.start;
        parallel_indexed(self.range.len(), |i| (self.f)(base + i))
            .into_iter()
            .collect()
    }
}

/// `par_iter()` on slice-likes (`[T]`, `Vec<T>` via deref).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `into_par_iter()` on owned collections / ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        let v: Vec<u64> = (1..=1000).collect();
        v.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn range_for_each_and_collect() {
        let sum = AtomicU64::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[49], 49 * 49);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_with_forced_threads() {
        // Exercise the pooled path even on a single-core runner.
        with_env_threads("4", || {
            let (a, b) = super::join(|| (0..1000u64).sum::<u64>(), || "pooled");
            assert_eq!((a, b), (499_500, "pooled"));
        });
    }

    #[test]
    fn really_uses_threads() {
        // Two chunks that each take ~50 ms: while the caller sleeps in its
        // own chunk, a (pre-notified) pool worker has ample time to wake
        // and claim the other one.
        with_env_threads("2", || {
            let main_id = std::thread::current().id();
            let v: Vec<u32> = vec![0, 1];
            let ids: Vec<std::thread::ThreadId> = v
                .par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    std::thread::current().id()
                })
                .collect();
            assert!(
                ids.iter().any(|id| *id != main_id),
                "no work left the calling thread"
            );
        });
    }

    #[test]
    fn workers_persist_across_calls() {
        // The pool must reuse threads rather than spawn per fan-out: many
        // rounds accumulate only a bounded set of distinct worker ids.
        with_env_threads("3", || {
            use std::collections::HashSet;
            let mut seen: HashSet<std::thread::ThreadId> = HashSet::new();
            let v: Vec<u32> = (0..1024).collect();
            for _ in 0..20 {
                let ids: Vec<std::thread::ThreadId> =
                    v.par_iter().map(|_| std::thread::current().id()).collect();
                seen.extend(ids);
            }
            // Per-call spawning would show ~40 distinct helper ids; the
            // pool keeps a couple (plus this caller and any concurrently
            // running test threads that helped).
            assert!(
                seen.len() <= 12,
                "pool appears to spawn per call: {} thread ids",
                seen.len()
            );
        });
    }

    #[test]
    fn nested_parallelism_completes() {
        with_env_threads("4", || {
            let outer: Vec<u64> = (0..8usize)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<u64> = (0..64usize)
                        .into_par_iter()
                        .map(|j| (i * 64 + j) as u64)
                        .collect();
                    inner.iter().sum()
                })
                .collect();
            let total: u64 = outer.iter().sum();
            assert_eq!(total, (0..512u64).sum());
        });
    }

    #[test]
    fn panics_propagate_to_caller_with_payload() {
        with_env_threads("4", || {
            let result = std::panic::catch_unwind(|| {
                let v: Vec<u32> = (0..256).collect();
                let _: Vec<u32> = v
                    .par_iter()
                    .map(|&x| {
                        assert!(x != 200, "boom at {x}");
                        x
                    })
                    .collect();
            });
            // The original payload (not a generic wrapper message) reaches
            // the caller, like the old scoped-thread propagation.
            let payload = result.expect_err("worker panic must reach the caller");
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(msg.contains("boom at 200"), "payload lost: {msg:?}");
            // The pool stays usable afterwards.
            let v: Vec<u64> = (1..=100).collect();
            let s: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
            assert_eq!(s.iter().sum::<u64>(), 5050 + 100);
        });
    }

    #[test]
    fn join_survives_first_arm_panic() {
        // A panicking first arm must not unwind past the handshake while
        // the second arm's invitation is still live (that would free the
        // stack-allocated job under a worker). The panic is re-thrown
        // afterwards with its payload intact.
        with_env_threads("4", || {
            for _ in 0..32 {
                let result = std::panic::catch_unwind(|| {
                    super::join(|| panic!("first arm down"), || (0..512u64).sum::<u64>())
                });
                let payload = result.expect_err("first-arm panic must propagate");
                let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "first arm down");
            }
            // Pool still healthy.
            let (a, b) = super::join(|| 1u32, || 2u32);
            assert_eq!((a, b), (1, 2));
        });
    }

    /// Serializes env-flipping tests (cargo runs tests concurrently).
    fn with_env_threads(n: &str, f: impl FnOnce()) {
        use std::sync::Mutex;
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", n);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        match prev {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
    }
}
