//! Minimal `rayon` shim (see `vendor/README.md`).
//!
//! Genuinely parallel: work is split into contiguous chunks executed on
//! `std::thread::scope` threads, one per available core (capped by the
//! `RAYON_NUM_THREADS` environment variable, like real rayon). Results of
//! `map().collect()` preserve input order, so parallel collects are
//! deterministic regardless of thread count or scheduling.
//!
//! Covered subset: `par_iter()` on slices/`Vec`s, `into_par_iter()` on
//! `Range<usize>`, `map` + `collect`, `for_each`, [`join`], and
//! [`current_num_threads`]. Unlike real rayon there is no work stealing and
//! no persistent pool — each call spawns scoped threads, which is right for
//! the coarse-grained fan-out this workspace does (hundreds of microseconds
//! to seconds per chunk) and wrong for fine-grained nested parallelism.

use std::ops::Range;

/// Number of threads parallel operations will use: `RAYON_NUM_THREADS` if
/// set to a positive integer, otherwise `std::thread::available_parallelism`.
///
/// Read per call (not cached) so tests can flip the variable between runs.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Order-preserving parallel map over `0..len`: the chunked backbone of
/// every iterator below.
fn parallel_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    std::thread::scope(|scope| {
        for (ci, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let base = ci * chunk;
            scope.spawn(move || {
                for (off, s) in slot.iter_mut().enumerate() {
                    *s = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("parallel worker panicked"))
        .collect()
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element (lazily; evaluated in parallel at `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_indexed(self.items.len(), |i| f(&self.items[i]));
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazily mapped parallel iterator over `&[T]`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates in parallel, collecting results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_indexed(self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index (lazily; evaluated in parallel at `collect`).
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let base = self.range.start;
        parallel_indexed(self.range.len(), |i| f(base + i));
    }
}

/// Lazily mapped parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<R, F> ParRangeMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Evaluates in parallel, collecting results in index order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let base = self.range.start;
        parallel_indexed(self.range.len(), |i| (self.f)(base + i))
            .into_iter()
            .collect()
    }
}

/// `par_iter()` on slice-likes (`[T]`, `Vec<T>` via deref).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// `into_par_iter()` on owned collections / ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let sum = AtomicU64::new(0);
        let v: Vec<u64> = (1..=1000).collect();
        v.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn range_for_each_and_collect() {
        let sum = AtomicU64::new(0);
        (0..100usize).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[49], 49 * 49);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn really_uses_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core runner: nothing to assert
        }
        let main_id = std::thread::current().id();
        let v: Vec<u32> = (0..64).collect();
        let ids: Vec<std::thread::ThreadId> =
            v.par_iter().map(|_| std::thread::current().id()).collect();
        assert!(
            ids.iter().any(|id| *id != main_id),
            "no work left the calling thread"
        );
    }
}
