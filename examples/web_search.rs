//! Free-text search over a small "digital library" of real documents.
//!
//! Exercises the full text pipeline of the paper's prototype — tokenizer,
//! 250 stop words, Porter stemmer — then builds the distributed HDK index
//! over the analyzed documents and answers free-text queries, printing the
//! matched documents with snippets. (The paper's engine was built for
//! exactly this setting: federating digital-library collections, ECDL'06.)
//!
//! ```text
//! cargo run --release --example web_search
//! ```

use p2p_hdk::prelude::*;

/// A miniature "web": titled articles, three per topic cluster.
const ARTICLES: &[(&str, &str)] = &[
    ("P2P retrieval", "Peer-to-peer retrieval engines distribute the indexing and querying load over large networks of collaborating peers. Structured overlays maintain a distributed global index."),
    ("Distributed hash tables", "A distributed hash table assigns every key to a responsible peer. Routing in structured peer-to-peer networks reaches the responsible peer in a logarithmic number of hops."),
    ("Indexing with keys", "Highly discriminative keys are terms and term sets appearing in a small number of documents. Indexing with such keys bounds the posting list size and the retrieval traffic."),
    ("BM25 ranking", "The BM25 relevance scheme ranks documents by term frequency saturation and inverse document frequency with document length normalization. BM25 remains a top performing ranking function."),
    ("Inverted indexes", "An inverted index maps every term of the vocabulary to the posting list of documents containing the term. Compression of posting lists uses gap encoding and variable length integers."),
    ("Query processing", "Query processing retrieves the posting lists of the query terms, merges them, and ranks the resulting documents. Multi-term queries benefit from precomputed term set keys."),
    ("Zipf distributions", "Term frequency distributions in large text collections follow the Zipf law. A small number of very frequent terms dominates the text while most terms are rare."),
    ("Bandwidth scalability", "Bandwidth consumption is the major obstacle for peer-to-peer web search. Transmitting long posting lists between peers exceeds the capacity of communication networks."),
    ("Digital libraries", "Digital libraries federate document collections across institutions. A peer-to-peer architecture lets every library contribute storage and indexing capacity."),
    ("Web crawling", "A web crawler downloads documents, extracts links, and feeds the indexer. Crawling politeness limits the request rate per host."),
    ("Stemming algorithms", "The Porter stemmer strips suffixes from English words in five steps. Stemming conflates morphological variants and improves retrieval recall."),
    ("Stop words", "Stop words are extremely common words carrying little retrieval signal. Removing the most common English words shrinks the index considerably."),
];

fn main() {
    // 1. Analyze the documents: tokenize, remove stop words, stem, intern.
    let mut analyzer = Analyzer::new();
    let mut docs = Vec::new();
    for (i, (_, body)) in ARTICLES.iter().enumerate() {
        let analyzed = analyzer.analyze(body);
        docs.push(Document {
            id: DocId(i as u32),
            tokens: analyzed.tokens,
        });
    }
    let vocab = analyzer.vocab().clone();
    let collection = Collection::new(docs, vocab);
    println!(
        "library: {} articles, vocabulary {} stems",
        collection.len(),
        collection.vocab().len()
    );

    // 2. Three library peers share the collection.
    let partitions = partition_documents(collection.len(), 3, 1);
    let network = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax: 2, // tiny collection: pairs sharing >2 docs are "common"
            ff: 1_000,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    );
    let queries = network.query_service();
    let counts = queries.index().index_counts();
    println!("global index: {counts}\n");

    // 3. Free-text queries go through the same analyzer.
    for query_text in [
        "peer-to-peer retrieval",
        "posting list compression",
        "ranking documents with BM25",
        "stemming English words",
        "bandwidth of web search",
    ] {
        let terms = analyzer.analyze_query(query_text);
        let outcome = queries.query(PeerId(0), &terms, 3);
        println!("query: {query_text:?}");
        if outcome.results.is_empty() {
            println!("  (no matches)");
        }
        for r in &outcome.results {
            let (title, body) = ARTICLES[r.doc.index()];
            let snippet: String = body.chars().take(60).collect();
            println!("  {:>5.2}  {title} — {snippet}...", r.score);
        }
        println!(
            "  cost: {} lookups, {} postings fetched\n",
            outcome.lookups, outcome.postings_fetched
        );
    }
}
