//! Capacity planning: choosing `DFmax` from network constraints.
//!
//! The paper's conclusion: the model "makes it possible to take into
//! account [...] the network related capacity constraints, and can
//! adequately adapt the various parameters of the model in order to meet
//! desired indexing and retrieval traffic requirements". This example does
//! that concretely: given a per-query posting budget and an expected query
//! size mix, derive the admissible `DFmax`, then verify the bound
//! empirically on a live network.
//!
//! ```text
//! cargo run --release --example traffic_planning
//! ```

use p2p_hdk::model::retrieval_cost::{keys_for_query, retrieval_traffic_bound};
use p2p_hdk::prelude::*;

fn main() {
    // Requirement: a query may move at most this many postings end-to-end
    // (e.g. derived from link capacity and target latency).
    let budget_postings_per_query = 2_000u64;
    // Expected workload: mostly 2–3 term queries (the paper's log averages
    // 2.3 terms; sizes above smax share the truncated lattice).
    let smax = 3;
    let design_query_size = 3; // plan for the worst common case

    let nk = keys_for_query(design_query_size, smax);
    let dfmax = (budget_postings_per_query / nk) as u32;
    println!(
        "budget {budget_postings_per_query} postings/query, design |q| = {design_query_size} \
         (nk = {nk}) -> DFmax <= {dfmax}"
    );
    for q in 2..=8 {
        println!(
            "  worst-case |q| = {q}: nk = {:>2}, bound = {:>6} postings",
            keys_for_query(q, smax),
            retrieval_traffic_bound(q, smax, dfmax)
        );
    }

    // Verify on a live network: no query may exceed its bound.
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 1_500,
        vocab_size: 10_000,
        avg_doc_len: 80,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), 6, 3);
    // Only retrieval is measured, so a bare read-path handle suffices.
    let network = HdkNetwork::build(
        &collection,
        &partitions,
        HdkConfig {
            dfmax,
            smax,
            ff: 3_000,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    )
    .query_service();
    let central = CentralizedEngine::build(&collection);
    let log = QueryLog::generate_filtered(
        &collection,
        &QueryLogConfig {
            num_queries: 100,
            min_hits: 5,
            ..QueryLogConfig::default()
        },
        |terms| central.count_hits(terms),
    );

    let mut worst = 0u64;
    let mut total = 0u64;
    let mut violations = 0usize;
    for q in &log.queries {
        let out = network.query(PeerId(0), &q.terms, 20);
        worst = worst.max(out.postings_fetched);
        total += out.postings_fetched;
        if out.postings_fetched > retrieval_traffic_bound(q.terms.len(), smax, dfmax) {
            violations += 1;
        }
    }
    println!(
        "\nmeasured over {} queries: mean {:.0}, worst {} postings/query, {} bound violations",
        log.len(),
        total as f64 / log.len().max(1) as f64,
        worst,
        violations
    );
    assert_eq!(violations, 0, "the nk*DFmax bound must hold");
    println!("the nk * DFmax bound holds for every query — capacity plan is safe");
}
