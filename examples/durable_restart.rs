//! Durable restart over the tiered segment store: build a network whose
//! DHT stripes spill past a small memory budget into per-stripe segment
//! logs on disk, flush, restart every peer from those logs, and show the
//! recovered index answering bit-identically — then crash one peer
//! *without* flushing and watch the repair sweep close the gap the log
//! could not cover.
//!
//! The tiered store is selected per build via
//! `HdkConfig { store: StoreConfig::Segment { .. } }` (or for a whole
//! test run via `HDK_STORE=segment:<hot bytes>`); the default remains the
//! all-in-memory map. Tiering is host-local, so a tiered build produces
//! the same reports, traffic counters and f64 score bits as the
//! in-memory one.
//!
//! ```text
//! cargo run --release --example durable_restart
//! ```

use p2p_hdk::prelude::*;

fn main() {
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 1_200,
        vocab_size: 12_000,
        avg_doc_len: 70,
        ..GeneratorConfig::default()
    })
    .generate();
    let peers = 6;
    let parts = partition_documents(collection.len(), peers, 11);
    let hot_bytes: u64 = 1 << 16; // 64 KiB of hot postings across 128 stripes

    // R = 2 + tiered storage: replicas survive crashes, segments survive
    // restarts. `dir: None` uses a scratch directory wiped on drop; point
    // it at a real path to keep the logs across process lifetimes.
    let config = HdkConfig {
        dfmax: 25,
        ff: u64::MAX,
        replication: 2,
        store: StoreConfig::Segment {
            dir: None,
            hot_bytes,
        },
        ..HdkConfig::default()
    };
    let mut network = HdkNetwork::build(&collection, &parts, config, OverlayKind::PGrid);

    let probe = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: 40,
            ..QueryLogConfig::default()
        },
    );
    let digest = |network: &HdkNetwork| -> Vec<Vec<u64>> {
        probe
            .queries
            .iter()
            .map(|q| {
                network
                    .query(PeerId(1), &q.terms, 20)
                    .results
                    .iter()
                    .map(|r| r.score.to_bits())
                    .collect()
            })
            .collect()
    };
    let before = digest(&network);
    println!(
        "built: {} keys, {} B resident (budget {hot_bytes} B), {} B sealed on disk",
        network.index().index_counts().total_keys(),
        network.index().resident_posting_bytes(),
        network.index().sealed_segment_bytes(),
    );

    // Crash: no sync — one peer's hot (unsealed) copies evaporate. The
    // log replay recovers its sealed frames; the repair sweep restores
    // the hot remainder from the R = 2 replicas. Crash the peer with the
    // most hot bytes so the gap is visible.
    let per_peer = network.index().storage_per_peer();
    let victim_idx = (0..per_peer.len())
        .max_by_key(|&i| per_peer[i].resident_bytes())
        .expect("network has peers");
    let victim = network.peers()[victim_idx].id;
    let (recovery, repair) = network.restart_peers(&[victim]);
    println!(
        "crash-restart of {victim:?} without sync: {} sealed copies recovered, \
         {} hot copies lost, {} repaired from replicas",
        recovery.copies_recovered, recovery.copies_lost, repair.copies,
    );
    assert_eq!(recovery.keys_lost, 0, "R = 2 covers every hot copy");
    assert_eq!(repair.copies, recovery.copies_lost);
    assert_eq!(
        digest(&network),
        before,
        "repaired index must answer identically"
    );

    // Graceful shutdown: seal every hot entry, then restart ALL peers at
    // once. Log replay alone rebuilds the index; the closing repair
    // sweep has nothing to do.
    network.sync_storage();
    let everyone: Vec<PeerId> = network.peers().iter().map(|p| p.id).collect();
    let (recovery, repair) = network.restart_peers(&everyone);
    println!(
        "graceful restart of all {peers} peers: {} frames / {} B replayed, \
         {} copies lost, {} repaired",
        recovery.frames_replayed, recovery.bytes_replayed, recovery.copies_lost, repair.copies,
    );
    assert_eq!(recovery.copies_lost, 0);
    assert_eq!(repair.copies, 0);
    assert_eq!(
        digest(&network),
        before,
        "recovered index must answer identically"
    );

    println!(
        "top-{} score bits identical across both recoveries for all {} probe queries",
        20,
        probe.len(),
    );
}
