//! Regenerates the golden snapshot: `cargo run --release --example
//! golden_dump > tests/golden/report.txt`. See [`p2p_hdk::golden`].

fn main() {
    for line in p2p_hdk::golden::golden_report_lines() {
        println!("{line}");
    }
}
