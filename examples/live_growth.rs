//! Live network churn in both directions: peers join a running network
//! bringing their own documents — the paper's scaling model ("the natural
//! P2P solution for processing document collections that reach
//! unmanageable sizes is to increase the number of available peers") —
//! and then leave or crash without losing the indexed content, thanks to
//! graceful handover waves and the replica/repair subsystem.
//!
//! Each join (1) splits a region of the key space for the new peer and
//! migrates the affected index fraction (maintenance traffic, the
//! `Migrate` message), then (2) indexes the new documents incrementally:
//! previously indexed documents are only re-examined for keys that newly
//! became non-discriminative. The resulting index is bit-identical to a
//! from-scratch build (see `tests/churn_growth.rs`). The final two peers
//! arrive as one bulk `join_peers` wave, sharing a single incremental
//! session. Growth runs on the `IndexService` handle; the probe queries
//! only touch the `QueryService`.
//!
//! ```text
//! cargo run --release --example live_growth
//! ```

use p2p_hdk::prelude::*;

fn main() {
    let docs_per_peer = 250;
    let total_peers = 8;
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: docs_per_peer * total_peers,
        vocab_size: 12_000,
        avg_doc_len: 70,
        ..GeneratorConfig::default()
    })
    .generate();

    // Bootstrap: 2 peers with the first 2 * 250 documents, then split the
    // system into its service handles — churn drives the write path while
    // the probe queries only ever touch the (thread-shareable) read path.
    let boot_docs = docs_per_peer * 2;
    let (mut indexer, queries) = HdkNetwork::build(
        &collection.prefix(boot_docs),
        &partition_documents(boot_docs, 2, 1),
        HdkConfig {
            dfmax: 25,
            ff: u64::MAX,
            ..HdkConfig::default()
        },
        OverlayKind::PGrid,
    )
    .into_services();
    println!(
        "{:>5} {:>6}  {:>10} {:>12} {:>12} {:>14}",
        "peers", "docs", "keys", "stored/peer", "moved_keys", "retr/query"
    );

    let probe = QueryLog::generate(
        &collection,
        &QueryLogConfig {
            num_queries: 40,
            ..QueryLogConfig::default()
        },
    );
    let report_line = |queries: &QueryService, moved: u64| {
        let r = queries.build_report();
        let mut fetched = 0u64;
        for q in &probe.queries {
            fetched += queries.query(PeerId(1), &q.terms, 20).postings_fetched;
        }
        println!(
            "{:>5} {:>6}  {:>10} {:>12.0} {:>12} {:>14.1}",
            r.num_peers,
            r.num_docs,
            r.counts.total_keys(),
            r.avg_stored_per_peer(),
            moved,
            fetched as f64 / probe.len() as f64,
        );
    };
    report_line(&queries, 0);

    // Four more peers join one at a time, each contributing 250 documents.
    for j in 2..total_peers - 2 {
        let lo = j * docs_per_peer;
        let docs: Vec<Document> = (lo..lo + docs_per_peer)
            .map(|i| collection.docs()[i].clone())
            .collect();
        let migration = indexer.join_peer(PeerId(100 + j as u64), docs);
        report_line(&queries, migration.keys_moved);
    }

    // The last two arrive together: one bulk `join_peers` call admits both
    // and indexes their documents in a single shared session — the
    // re-announce sweep is amortized across the wave.
    let wave: Vec<(PeerId, Vec<Document>)> = (total_peers - 2..total_peers)
        .map(|j| {
            let lo = j * docs_per_peer;
            let docs: Vec<Document> = (lo..lo + docs_per_peer)
                .map(|i| collection.docs()[i].clone())
                .collect();
            (PeerId(100 + j as u64), docs)
        })
        .collect();
    let migrations = indexer.join_peers(wave);
    report_line(
        &queries,
        migrations.iter().map(|m| m.keys_moved).sum::<u64>(),
    );

    // Churn runs the other way too. One founder retires gracefully — its
    // held copies hand over as one maintenance wave, nothing is lost even
    // at the default R = 1.
    let handover = indexer.leave_peers(vec![PeerId(0)]);
    report_line(&queries, handover[0].keys_moved);

    let snap = queries.snapshot();
    println!(
        "\ntotals: {} postings inserted (indexing), {} moved by joins+leaves (maintenance), \
         {} fetched by the {} probe queries run at each step",
        snap.indexing_postings(),
        snap.kind(MsgKind::Maintenance).postings,
        snap.retrieval_postings(),
        probe.len(),
    );
    println!(
        "per-query traffic stays bounded while the collection quadruples — \
         the paper's Figure 6 effect, live"
    );
    println!(
        "peer0 retired gracefully: {} key copies handed over, every query above kept answering \
         (run `cargo run -p hdk-bench --release --bin availability` for the crash/repair study)",
        handover[0].keys_moved,
    );
}
