//! Scalability study: grow the network peer by peer (constant documents
//! per peer, as in the paper's use-case assumption) and watch the two
//! quantities the paper's argument hinges on:
//!
//! * ST retrieval traffic per query **grows linearly** with the collection;
//! * HDK retrieval traffic per query **stays bounded** by `nk · DFmax`.
//!
//! Finishes with the analytic extrapolation to web scale (Figure 8 logic).
//!
//! ```text
//! cargo run --release --example scalability_study
//! ```

use p2p_hdk::prelude::*;

fn main() {
    let docs_per_peer = 300;
    let sweep = [2usize, 4, 8, 12];
    let max_docs = docs_per_peer * sweep.last().unwrap();

    // One collection, indexed in growing prefixes so points are comparable.
    let full = CollectionGenerator::new(GeneratorConfig {
        num_docs: max_docs,
        vocab_size: 15_000,
        avg_doc_len: 80,
        ..GeneratorConfig::default()
    })
    .generate();

    let dfmax = 25;
    println!("DFmax = {dfmax}, {docs_per_peer} docs/peer\n");
    println!(
        "{:>6} {:>6}  {:>14} {:>14}  {:>12} {:>12}",
        "peers", "docs", "ST store/peer", "HDK store/peer", "ST retr/q", "HDK retr/q"
    );

    let mut last = None;
    for &peers in &sweep {
        let docs = peers * docs_per_peer;
        let collection = full.prefix(docs);
        let partitions = partition_documents(docs, peers, 9);

        let st = SingleTermNetwork::build(&collection, &partitions, OverlayKind::PGrid);
        let hdk = HdkNetwork::build(
            &collection,
            &partitions,
            HdkConfig {
                dfmax,
                ff: 2_500,
                ..HdkConfig::default()
            },
            OverlayKind::PGrid,
        )
        .query_service();

        let central = CentralizedEngine::build(&collection);
        let log = QueryLog::generate_filtered(
            &collection,
            &QueryLogConfig {
                num_queries: 60,
                min_hits: 5,
                ..QueryLogConfig::default()
            },
            |terms| central.count_hits(terms),
        );

        let mut st_fetch = 0u64;
        let mut hdk_fetch = 0u64;
        for q in &log.queries {
            let from = PeerId(u64::from(q.id) % peers as u64);
            st_fetch += st.query(from, &q.terms, 20).postings_fetched;
            hdk_fetch += hdk.query(from, &q.terms, 20).postings_fetched;
        }
        let nq = log.len().max(1) as u64;
        let st_r = st.build_report();
        let hdk_r = hdk.build_report();
        println!(
            "{:>6} {:>6}  {:>14.0} {:>14.0}  {:>12.1} {:>12.1}",
            peers,
            docs,
            st_r.avg_stored_per_peer(),
            hdk_r.avg_stored_per_peer(),
            st_fetch as f64 / nq as f64,
            hdk_fetch as f64 / nq as f64,
        );
        last = Some((st_r, hdk_r, st_fetch / nq, hdk_fetch / nq, docs));
    }

    // Extrapolate to web scale with the measured coefficients.
    let (st_r, hdk_r, st_q, hdk_q, docs) = last.unwrap();
    let model = TrafficModel {
        st_postings_per_doc: st_r.postings_per_doc(),
        hdk_postings_per_doc: hdk_r.postings_per_doc(),
        st_retrieval_per_query_per_doc: st_q as f64 / docs as f64,
        hdk_retrieval_per_query: hdk_q as f64,
        queries_per_period: 1.5e6,
    };
    println!("\nextrapolated monthly traffic (postings), measured coefficients:");
    for m in [1e6, 1e8, 1e9] {
        println!(
            "  M = {m:>6.0e}: ST {:>10.3e}  HDK {:>10.3e}  ratio {:>6.1}",
            model.st_total(m),
            model.hdk_total(m),
            model.ratio(m)
        );
    }
    println!(
        "  HDK generates less total traffic above {:.0} documents",
        model.crossover_docs()
    );
}
