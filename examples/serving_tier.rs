//! The serving tier end to end in one runnable example: three peer
//! hosts behind real TCP sockets (threads here; `hdk-peer` runs the
//! same `PeerHost` as separate processes), an index built through the
//! wire protocol, and the HTTP/JSON front-end queried like an external
//! client would.
//!
//! ```text
//! cargo run --release --example serving_tier
//! ```
//!
//! Prints the top-k JSON for one query and a slice of the Prometheus
//! metrics, then verifies the served scores are bit-identical to the
//! in-process build of the same corpus.

use p2p_hdk::prelude::*;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

const NPROCS: usize = 3;
const PEERS: usize = 8;
const DFMAX: u32 = 12;

fn http_get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect front-end");
    stream.set_nodelay(true).expect("set nodelay");
    let request = format!("GET {target} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(raw)
}

fn main() {
    // --- Three peer hosts on loopback sockets. ---
    let mut addrs = Vec::new();
    for proc_index in 0..NPROCS {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind peer");
        addrs.push(listener.local_addr().expect("bound").to_string());
        let host = PeerHost::new(PeerConfig {
            nprocs: NPROCS,
            proc_index,
            num_peers: PEERS,
            dfmax: DFMAX,
            replication: 1,
            overlay: OverlayKind::PGrid,
            store: StoreConfig::Memory,
        });
        std::thread::spawn(move || host.serve(listener));
    }

    // --- Build the same corpus through the wire and in-process. ---
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 240,
        vocab_size: 3_000,
        seed: 7,
        ..GeneratorConfig::default()
    })
    .generate();
    let partitions = partition_documents(collection.len(), PEERS, 42);
    let config = HdkConfig {
        dfmax: DFMAX,
        ..HdkConfig::default()
    };
    let tcp = HdkNetwork::build_with(
        &collection,
        &partitions,
        config.clone(),
        OverlayKind::PGrid,
        BackendConfig::Tcp { addrs },
    );
    let inproc = HdkNetwork::build(&collection, &partitions, config, OverlayKind::PGrid);
    println!(
        "built {} docs over {PEERS} peers in {NPROCS} serving hosts ({} HDK keys)",
        collection.len(),
        tcp.query_service().index().index_counts().total_keys()
    );

    // --- The HTTP front-end, queried like an external client. ---
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind front-end");
    let handle = spawn_http(listener, tcp.query_service()).expect("spawn http");
    let addr = handle.addr();

    let terms = collection.long_query(0, 3);
    let q: Vec<String> = terms.iter().map(|t| t.0.to_string()).collect();
    let body = http_get(addr, &format!("/query?q={}&k=5", q.join(",")));
    println!("\nGET /query?q={}&k=5\n{body}", q.join(","));

    let metrics = http_get(addr, "/metrics");
    let insert_lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.contains("index_insert") || l.contains("query_lookup"))
        .take(4)
        .collect();
    println!("\nGET /metrics (slice)\n{}", insert_lines.join("\n"));

    // --- Served results are bit-identical to the in-process build. ---
    let reference = inproc.query_service().query(PeerId(0), &terms, 5);
    for r in &reference.results {
        let fragment = format!("{{\"doc\":{},\"score\":{}}}", r.doc.0, r.score);
        assert!(body.contains(&fragment), "served JSON diverged: {fragment}");
    }
    println!(
        "\nserved top-{} matches the in-process build bit-for-bit",
        reference.results.len()
    );
    handle.stop();
}
