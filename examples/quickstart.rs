//! Quickstart: build an HDK P2P index over a generated collection, run a
//! few queries, and inspect the costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2p_hdk::prelude::*;

fn main() {
    // 1. A synthetic Wikipedia-like collection (deterministic: same seed,
    //    same collection) distributed randomly over 8 peers.
    let collection = CollectionGenerator::new(GeneratorConfig {
        num_docs: 2_000,
        vocab_size: 12_000,
        avg_doc_len: 80,
        ..GeneratorConfig::default()
    })
    .generate();
    let stats = collection.stats();
    println!(
        "collection: {} docs, {} tokens, |T| = {}, avg len {:.1}",
        stats.num_documents, stats.sample_size, stats.vocab_size, stats.avg_doc_len
    );

    let peers = 8;
    let partitions = partition_documents(collection.len(), peers, 42);

    // 2. Build the distributed HDK index (paper parameters scaled to this
    //    collection size — see HdkConfig::scaled_for).
    let config = HdkConfig::scaled_for(stats.sample_size as u64, stats.num_documents);
    println!(
        "HDK config: DFmax = {}, smax = {}, w = {}, Ff = {}",
        config.dfmax, config.smax, config.window, config.ff
    );
    let network = HdkNetwork::build(&collection, &partitions, config, OverlayKind::PGrid);
    // The read path is a clonable service handle: share it across as many
    // query threads as you like (to simulate network latency instead,
    // build with `HdkNetwork::build_with(..., BackendConfig::SimNet(..))`).
    let queries = network.query_service();
    let report = queries.build_report();
    println!(
        "index built in {} rounds: {} keys, {:.0} postings stored per peer ({:.0} inserted)",
        report.rounds,
        report.counts.total_keys(),
        report.avg_stored_per_peer(),
        report.avg_inserted_per_peer(),
    );

    // 3. A query log sampled from the collection (multi-term queries with
    //    co-occurring terms, like the paper's Wikipedia log).
    let central = CentralizedEngine::build(&collection);
    let log = QueryLog::generate_filtered(
        &collection,
        &QueryLogConfig {
            num_queries: 10,
            ..QueryLogConfig::default()
        },
        |terms| central.count_hits(terms),
    );

    // 4. Query the P2P network from different peers and compare with the
    //    centralized BM25 engine.
    for q in &log.queries {
        let from = PeerId(u64::from(q.id) % peers as u64);
        let outcome = queries.query(from, &q.terms, 20);
        let reference = central.search(&q.terms, 20);
        let overlap = top_k_overlap(&outcome.results, &reference, 20);
        let words: Vec<&str> = q
            .terms
            .iter()
            .map(|&t| collection.vocab().term(t))
            .collect();
        println!(
            "query {:<30} -> {:>2} results, {:>3} lookups, {:>5} postings fetched, {:>5.1}% top-20 overlap",
            words.join(" "),
            outcome.results.len(),
            outcome.lookups,
            outcome.postings_fetched,
            overlap,
        );
    }

    // 5. The headline property: retrieval traffic is bounded by nk * DFmax
    //    per query, no matter how large the collection grows.
    let bound = queries.max_lookups(3) * u64::from(queries.config().dfmax);
    println!("\nper-query traffic bound for a 3-term query: nk * DFmax = {bound} postings");
}
